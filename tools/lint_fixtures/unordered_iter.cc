// nbv6-lint-fixture: expect(unordered-iter)
// Not compiled: lint fixture only. Range-for over an unordered container
// in a canonical-serialization context: iteration order is
// implementation-defined, so the serialized bytes are too.
#include <string>
#include <unordered_map>

std::string serialize_counts(const std::unordered_map<std::string, int>& by_name) {
  std::unordered_map<std::string, int> counts = by_name;
  std::string out;
  for (const auto& kv : counts) out += kv.first + "\n";
  return out;
}
