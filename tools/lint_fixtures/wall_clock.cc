// nbv6-lint-fixture: expect(wall-clock)
// Not compiled: lint fixture only. All three wall-clock shapes the rule
// covers; "steady_clock" in this comment must not count.
#include <chrono>
#include <ctime>

long three_clock_reads() {
  auto a = std::chrono::system_clock::now().time_since_epoch().count();
  auto b = std::chrono::steady_clock::now().time_since_epoch().count();
  auto c = static_cast<long>(time(nullptr));
  return static_cast<long>(a) + static_cast<long>(b) + c;
}
