// nbv6-lint-fixture: expect(random-device)
// Not compiled: lint fixture only. Seeding from entropy is the canonical
// determinism bug — two runs of the same config diverge.
#include <random>

unsigned entropy_seed() {
  std::random_device rd;
  return rd();
}
