// nbv6-lint-fixture: expect(purity-comment)
// Not compiled: lint fixture only. A raw draw site with no documentation
// of the coordinate fold that makes it evaluation-order-independent.
#include <cstdint>

namespace stats {
std::uint64_t splitmix64(std::uint64_t& state);
}

double undocumented_draw(std::uint64_t seed, int index) {
  std::uint64_t state = seed ^ static_cast<std::uint64_t>(index);
  return static_cast<double>(stats::splitmix64(state) >> 11) * 0x1.0p-53;
}
