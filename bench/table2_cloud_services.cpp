// Table 2: IPv6 adoption across cloud services, identified by CNAME suffix,
// with each service's IPv6 enablement policy.
#include "core/cloud_analysis.h"

#include "bench_common.h"

using namespace nbv6;

int main() {
  bench::section("Table 2: per-service IPv6 adoption (CNAME identification)");
  cloud::ProviderCatalog providers;
  auto universe = bench::make_universe(providers);
  auto survey = core::run_server_survey(universe, web::Epoch::jul2025, 42);
  auto records = core::build_domain_records(universe, survey);

  auto rows = cloud::service_breakdown(records, providers);
  std::printf("%-28s %-30s %-22s %7s %7s %8s\n", "Provider", "Service",
              "IPv6 policy", "ready", "total", "% ready");
  for (const auto& r : rows) {
    std::printf("%-28s %-30s %-22s %7d %7d %7.1f%%\n", r.provider_org.c_str(),
                r.service_name.c_str(),
                std::string(to_string(r.policy)).c_str(), r.v6_ready, r.total,
                r.pct_ready());
  }

  std::printf(
      "\nPaper reference: always-on services sit at 100%% (Azure Front "
      "Door); default-on\nCDNs at 48-71%% (tenants opt out); opt-in at "
      "2.7-7.4%%; opt-in-by-code-change\nnear zero (S3 at 0.4%% nine years "
      "after launch).\n");
  return 0;
}
