#!/usr/bin/env bash
# Refresh the committed microbenchmark baseline.
#
# Usage: run_baseline.sh <perf_microbench-binary> <repo-root> [out-name]
#
# Runs the google-benchmark harness in JSON mode and writes the result to
# <repo-root>/<out-name> (default BENCH_pr1.json). The file is committed at
# the repo root as one point of the performance trajectory; future perf PRs
# add BENCH_prN.json next to it and regress against the previous points.
# Normally invoked through the build: `cmake --build build -t bench_baseline`.
set -euo pipefail

BIN=${1:?usage: run_baseline.sh <perf_microbench-binary> <repo-root> [out-name]}
ROOT=${2:?usage: run_baseline.sh <perf_microbench-binary> <repo-root> [out-name]}
OUT=${3:-BENCH_pr1.json}

exec "$BIN" \
  --benchmark_out="$ROOT/$OUT" \
  --benchmark_out_format=json \
  --benchmark_format=console
