#!/usr/bin/env bash
# Refresh the committed microbenchmark baseline.
#
# Usage: run_baseline.sh <perf_microbench-binary> <repo-root> [out-name] [prev-name]
#
# Runs the google-benchmark harness in JSON mode and writes the result to
# <repo-root>/<out-name> (default BENCH_pr2.json). The file is committed at
# the repo root as one point of the performance trajectory; each perf PR
# adds BENCH_prN.json next to the previous points. When the previous
# baseline (default BENCH_pr1.json) exists and python3 is available, a
# regression table of common benchmarks is printed afterwards.
set -euo pipefail

BIN=${1:?usage: run_baseline.sh <perf_microbench-binary> <repo-root> [out-name] [prev-name]}
ROOT=${2:?usage: run_baseline.sh <perf_microbench-binary> <repo-root> [out-name] [prev-name]}
OUT=${3:-BENCH_pr2.json}
PREV=${4:-BENCH_pr1.json}

"$BIN" \
  --benchmark_out="$ROOT/$OUT" \
  --benchmark_out_format=json \
  --benchmark_format=console

if [[ -f "$ROOT/$PREV" ]] && command -v python3 >/dev/null 2>&1; then
  python3 - "$ROOT/$PREV" "$ROOT/$OUT" <<'PY'
import json, sys

prev_path, cur_path = sys.argv[1], sys.argv[2]
def load(path):
    with open(path) as f:
        data = json.load(f)
    return {b["name"]: b for b in data.get("benchmarks", [])
            if b.get("run_type", "iteration") == "iteration"}

prev, cur = load(prev_path), load(cur_path)
common = [n for n in cur if n in prev]
if common:
    print(f"\n--- regression vs {prev_path.split('/')[-1]} "
          f"(old/new real_time; >1 is faster) ---")
    for name in common:
        old, new = prev[name]["real_time"], cur[name]["real_time"]
        unit = cur[name].get("time_unit", "ns")
        ratio = old / new if new else float("inf")
        flag = "" if ratio >= 0.95 else "   <-- REGRESSION"
        print(f"  {name:<36} {old:12.1f} -> {new:12.1f} {unit}  x{ratio:5.2f}{flag}")
new_only = [n for n in cur if n not in prev]
if new_only:
    print("--- new benchmarks (no prior baseline) ---")
    for name in new_only:
        print(f"  {name:<36} {cur[name]['real_time']:12.1f} {cur[name].get('time_unit','ns')}")
PY
fi
