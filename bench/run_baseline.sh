#!/usr/bin/env bash
# Refresh the committed microbenchmark baseline.
#
# Usage: run_baseline.sh [--check] <perf_microbench-binary> <repo-root> [out-name] [prev-name]
#
# Runs the google-benchmark harness in JSON mode and writes the result to
# <repo-root>/<out-name> (default BENCH_pr7.json). The file is committed at
# the repo root as one point of the performance trajectory; each perf PR
# adds BENCH_prN.json next to the previous points. When a previous
# baseline exists (default: the highest-numbered committed BENCH_pr*.json
# other than the one being written) and python3 is available, a
# regression table of common benchmarks is printed afterwards; benchmarks
# new in this PR (firehose streaming, LOESS kernel, v6 batch CryptoPAN)
# are listed separately since they have no prior point.
#
# With --check (or NBV6_BENCH_CHECK=1) the script exits non-zero when any
# common benchmark regressed by more than 25% vs the previous baseline
# (new real_time > 1.25x old), making the table usable as a local or CI
# bench gate. Check runs write their JSON to a throwaway temp file unless
# an out-name is passed explicitly, so a quick gate pass never overwrites
# the committed baseline; a missing previous baseline or python3 fails the
# gate rather than silently passing. Extra benchmark arguments can be
# forwarded via NBV6_BENCH_ARGS (e.g.
# NBV6_BENCH_ARGS=--benchmark_min_time=0.01s for a smoke run).
set -euo pipefail

CHECK=${NBV6_BENCH_CHECK:-0}
if [[ "${1:-}" == "--check" ]]; then
  CHECK=1
  shift
fi

BIN=${1:?usage: run_baseline.sh [--check] <perf_microbench-binary> <repo-root> [out-name] [prev-name]}
ROOT=${2:?usage: run_baseline.sh [--check] <perf_microbench-binary> <repo-root> [out-name] [prev-name]}
OUT=${3:-BENCH_pr7.json}

# Gate runs (typically short smoke passes) must not clobber the committed
# baseline: unless an out-name was given explicitly, a --check run writes
# its JSON to a throwaway file instead of $ROOT/$OUT.
OUT_PATH="$ROOT/$OUT"
WRITES_BASELINE=1
if [[ "$CHECK" == "1" && -z "${3:-}" ]]; then
  OUT_PATH=$(mktemp /tmp/nbv6-bench-check.XXXXXX.json)
  WRITES_BASELINE=0
  trap 'rm -f "$OUT_PATH"' EXIT
fi

# Previous baseline: explicit 4th argument, else the highest-numbered
# committed BENCH_pr*.json — excluding the file this run is about to
# (re)write, so a baseline refresh compares against its predecessor while
# a throwaway --check run gates against the newest committed point.
if [[ -n "${4:-}" ]]; then
  PREV=$4
else
  PREV=""
  while IFS= read -r f; do
    base=$(basename "$f")
    if [[ "$WRITES_BASELINE" == "1" && "$base" == "$OUT" ]]; then
      continue
    fi
    PREV=$base
  done < <(ls "$ROOT"/BENCH_pr*.json 2>/dev/null | sort -V)
  PREV=${PREV:-BENCH_pr2.json}
fi

if [[ "$CHECK" == "1" ]]; then
  # A gate that cannot check must fail, not silently pass.
  if [[ ! -f "$ROOT/$PREV" ]]; then
    echo "error: --check requested but previous baseline $ROOT/$PREV is missing" >&2
    exit 1
  fi
  if ! command -v python3 >/dev/null 2>&1; then
    echo "error: --check requested but python3 is unavailable" >&2
    exit 1
  fi
fi

"$BIN" \
  --benchmark_out="$OUT_PATH" \
  --benchmark_out_format=json \
  --benchmark_format=console \
  ${NBV6_BENCH_ARGS:-}

if [[ -f "$ROOT/$PREV" ]] && command -v python3 >/dev/null 2>&1; then
  python3 - "$ROOT/$PREV" "$OUT_PATH" "$CHECK" <<'PY'
import json, sys

prev_path, cur_path, check = sys.argv[1], sys.argv[2], sys.argv[3] == "1"
def load(path):
    with open(path) as f:
        data = json.load(f)
    return {b["name"]: b for b in data.get("benchmarks", [])
            if b.get("run_type", "iteration") == "iteration"}

prev, cur = load(prev_path), load(cur_path)
common = [n for n in cur if n in prev]
regressed = []
comparable = 0
# Two labeled tiers: >5% slower earns an informational notice in the
# table; >25% slower is what the --check gate fails on.
NOTICE, GATE = 1.05, 1.25
if common:
    print(f"\n--- regression vs {prev_path.split('/')[-1]} "
          f"(old/new real_time; >1 is faster) ---")
    for name in common:
        old = prev[name].get("real_time")
        new = cur[name].get("real_time")
        unit = cur[name].get("time_unit", "ns")
        # A zero or missing time on either side cannot anchor a ratio:
        # dividing by it (or gating on 1.25 * 0) would fabricate a pass or
        # a regression. Name the broken side so the operator fixes the
        # right file.
        if not old or old <= 0:
            print(f"  {name:<36} no baseline (old={old!r})"
                  " -- not comparable")
            continue
        if not new or new <= 0:
            print(f"  {name:<36} current run produced no usable time"
                  f" (new={new!r}) -- not comparable")
            continue
        comparable += 1
        ratio = old / new
        if new > GATE * old:
            regressed.append((name, ratio))
            flag = "   <-- REGRESSION (>25%, gates --check)"
        elif new > NOTICE * old:
            flag = "   <-- slower (>5%)"
        else:
            flag = ""
        print(f"  {name:<36} {old:12.1f} -> {new:12.1f} {unit}  x{ratio:5.2f}{flag}")
new_only = [n for n in cur if n not in prev]
if new_only:
    print("--- new benchmarks (no prior baseline) ---")
    for name in new_only:
        print(f"  {name:<36} {cur[name].get('real_time', 0.0):12.1f} {cur[name].get('time_unit','ns')}")

if check and comparable == 0:
    # A gate with nothing to compare must say so and fail, not silently
    # report success over an empty table.
    print(f"\nFAIL: no baseline -- {prev_path.split('/')[-1]} shares no "
          "comparable (nonzero-time) benchmarks with this run")
    sys.exit(1)
if check and regressed:
    print(f"\nFAIL: {len(regressed)} benchmark(s) regressed >25% "
          f"vs {prev_path.split('/')[-1]}:")
    for name, ratio in regressed:
        print(f"  {name}  x{ratio:.2f}")
    sys.exit(1)
PY
fi
