// Shared plumbing for the experiment harness binaries.
//
// Every table and figure of the paper has its own binary under bench/.
// Each prints the same rows/series the paper reports, against the synthetic
// substrate, so the *shape* of every result can be compared directly with
// the published numbers (see EXPERIMENTS.md for the side-by-side).
//
// Scale knobs via environment:
//   NBV6_SITES  web universe size   (default 100000, the paper's scale)
//   NBV6_DAYS   residence days      (default 274, Nov 2024 - Aug 2025)
#pragma once

#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "bench_cli.h"
#include "cloud/providers.h"
#include "core/client_analysis.h"
#include "engine/fleet.h"
#include "core/server_analysis.h"
#include "flowmon/monitor.h"
#include "stats/descriptive.h"
#include "traffic/generator.h"
#include "traffic/residence.h"
#include "traffic/service_catalog.h"
#include "web/universe.h"

namespace nbv6::bench {

inline int env_int(const char* name, int fallback) {
  const char* v = std::getenv(name);
  return v != nullptr ? std::atoi(v) : fallback;
}

inline std::uint64_t env_u64(const char* name, std::uint64_t fallback) {
  const char* v = std::getenv(name);
  return v != nullptr ? std::strtoull(v, nullptr, 10) : fallback;
}

inline void section(const std::string& title) {
  std::printf("\n=== %s ===\n", title.c_str());
}

/// Print an ECDF at fixed evaluation points as "x y" rows.
inline void print_cdf(std::span<const double> values, const char* label,
                      int points = 21) {
  stats::Ecdf cdf(values);
  std::printf("# CDF: %s (n=%zu)\n", label, values.size());
  for (int i = 0; i <= points; ++i) {
    double q = static_cast<double>(i) / points;
    std::printf("  q=%.2f  value=%.4f\n", q, cdf.inverse(q));
  }
}

inline void print_boxplot(const stats::BoxPlot& b, const std::string& label) {
  std::printf("  %-42s q1=%.3f med=%.3f q3=%.3f whisk=[%.3f,%.3f] outliers=%zu\n",
              label.c_str(), b.q1, b.median, b.q3, b.whisker_low,
              b.whisker_high, b.outliers.size());
}

/// One simulated residence: config, conntrack table, monitor (tables and
/// monitors are non-movable as a pair, hence the unique_ptr wrapper).
struct SimulatedResidence {
  traffic::ResidenceConfig config;
  std::unique_ptr<flowmon::ConntrackTable> table;
  std::unique_ptr<flowmon::FlowMonitor> monitor;
};

/// Run all five paper residences for NBV6_DAYS days.
inline std::vector<SimulatedResidence> simulate_residences(
    const traffic::ServiceCatalog& catalog) {
  int days = env_int("NBV6_DAYS", 274);
  std::vector<SimulatedResidence> out;
  for (auto cfg : traffic::paper_residences()) {
    cfg.days = days;
    SimulatedResidence r;
    r.config = cfg;
    r.table = std::make_unique<flowmon::ConntrackTable>();
    r.monitor = std::make_unique<flowmon::FlowMonitor>(*r.table);
    traffic::ResidenceSimulator sim(catalog, cfg);
    sim.run(*r.table);
    out.push_back(std::move(r));
  }
  return out;
}

/// The fleet figure binaries' shared scenario defaults, one place so both
/// figures always run the same fleet.
inline engine::FleetConfig default_bench_fleet() {
  engine::FleetConfig cfg;
  cfg.residences = 256;
  cfg.days = 14;
  cfg.seed = 20260726;
  cfg.threads = 0;
  return cfg;
}

/// Register the shared fleet scenario flags on `cli`, targeting `cfg`
/// (typically default_bench_fleet()). The old NBV6_FLEET_* env knobs stay
/// wired in as deprecated fallbacks.
inline void register_fleet_flags(Cli& cli, engine::FleetConfig& cfg) {
  cli.flag_int("residences", &cfg.residences.mut(), "fleet size",
               "NBV6_FLEET_RESIDENCES");
  cli.flag_int("days", &cfg.days.mut(), "simulated horizon in days",
               "NBV6_FLEET_DAYS");
  cli.flag_u64("seed", &cfg.seed.mut(), "scenario master seed", "NBV6_FLEET_SEED");
  cli.flag_int("threads", &cfg.threads.mut(), "worker lanes, 0 = hw concurrency",
               "NBV6_FLEET_THREADS");
}

/// The standard web universe at NBV6_SITES scale.
inline web::Universe make_universe(const cloud::ProviderCatalog& providers) {
  web::UniverseConfig cfg;
  cfg.site_count = env_int("NBV6_SITES", 100000);
  return web::Universe(cfg, providers);
}

}  // namespace nbv6::bench
