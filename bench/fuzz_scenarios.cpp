// fuzz_scenarios: standalone differential scenario fuzzer.
//
//   fuzz_scenarios [--count=500 --base-seed=1 --outdir=fuzz-failures]
//   fuzz_scenarios [count] [base_seed] [outdir]     (legacy positionals)
//
// Generates `count` scenarios starting at `base_seed`, runs the full
// differential battery on each (parse/render round trip,
// lazy-vs-materialized plan cells, 1/4/8-lane byte-identical replays,
// windowed metric finiteness), and exits non-zero if any scenario fails.
// Failing configs are written to `outdir` as fail_<seed>.cfg next to a
// .err file with the failure description — CI uploads that directory as
// an artifact, and the .cfg file alone reproduces the failure under
// scenario_fuzz_test.
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <string>

#include "bench_cli.h"
#include "engine/scenario_fuzz.h"
#include "testutil.h"
#include "traffic/service_catalog.h"

int main(int argc, char** argv) {
  using namespace nbv6;
  std::uint64_t count = 500;
  std::uint64_t base = 1;
  std::string outdir = "fuzz-failures";
  std::string count_pos;
  std::string base_pos;

  bench::Cli cli("fuzz_scenarios", "Differential scenario fuzzer");
  cli.flag_u64("count", &count, "scenarios to generate");
  cli.flag_u64("base-seed", &base, "first scenario seed");
  cli.flag_string("outdir", &outdir, "failing-config output directory");
  cli.positional("count", &count_pos, "legacy form of --count");
  cli.positional("base_seed", &base_pos, "legacy form of --base-seed");
  cli.positional("outdir", &outdir, "legacy form of --outdir");
  if (!cli.parse(argc, argv)) return cli.exit_code();
  if (!count_pos.empty()) count = std::strtoull(count_pos.c_str(), nullptr, 10);
  if (!base_pos.empty()) base = std::strtoull(base_pos.c_str(), nullptr, 10);

  const auto catalog = traffic::build_paper_catalog();
  std::uint64_t failures = 0;
  for (std::uint64_t i = 0; i < count; ++i) {
    const std::uint64_t seed = base + i;
    const std::string text = engine::generate_scenario_text(seed);
    auto err = testutil::fuzz_check_scenario(text, catalog);
    if (err) {
      ++failures;
      std::error_code ec;
      std::filesystem::create_directories(outdir, ec);
      const std::string stem = outdir + "/fail_" + std::to_string(seed);
      testutil::write_file(stem + ".cfg", text);
      testutil::write_file(stem + ".err", *err + "\n");
      std::fprintf(stderr, "FAIL seed=%llu: %s\n",
                   static_cast<unsigned long long>(seed), err->c_str());
    }
    if ((i + 1) % 50 == 0 || i + 1 == count)
      std::fprintf(stderr, "fuzz_scenarios: %llu/%llu checked, %llu failed\n",
                   static_cast<unsigned long long>(i + 1),
                   static_cast<unsigned long long>(count),
                   static_cast<unsigned long long>(failures));
  }
  if (failures != 0) {
    std::fprintf(stderr, "fuzz_scenarios: %llu failing configs in %s/\n",
                 static_cast<unsigned long long>(failures), outdir.c_str());
    return 1;
  }
  std::printf("fuzz_scenarios: %llu scenarios, all invariants held\n",
              static_cast<unsigned long long>(count));
  return 0;
}
