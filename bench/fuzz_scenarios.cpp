// fuzz_scenarios: standalone differential scenario fuzzer.
//
//   fuzz_scenarios [count] [base_seed] [outdir]
//
// Generates `count` scenarios (default 500) starting at `base_seed`
// (default 1), runs the full differential battery on each (parse/render
// round trip, lazy-vs-materialized plan cells, 1/4/8-lane byte-identical
// replays, windowed metric finiteness), and exits non-zero if any
// scenario fails. Failing configs are written to `outdir`
// (default "fuzz-failures") as fail_<seed>.cfg next to a .err file with
// the failure description — CI uploads that directory as an artifact, and
// the .cfg file alone reproduces the failure under scenario_fuzz_test.
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <string>

#include "engine/scenario_fuzz.h"
#include "testutil.h"
#include "traffic/service_catalog.h"

int main(int argc, char** argv) {
  using namespace nbv6;
  const std::uint64_t count =
      argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 500;
  const std::uint64_t base =
      argc > 2 ? std::strtoull(argv[2], nullptr, 10) : 1;
  const std::string outdir = argc > 3 ? argv[3] : "fuzz-failures";

  const auto catalog = traffic::build_paper_catalog();
  std::uint64_t failures = 0;
  for (std::uint64_t i = 0; i < count; ++i) {
    const std::uint64_t seed = base + i;
    const std::string text = engine::generate_scenario_text(seed);
    auto err = testutil::fuzz_check_scenario(text, catalog);
    if (err) {
      ++failures;
      std::error_code ec;
      std::filesystem::create_directories(outdir, ec);
      const std::string stem = outdir + "/fail_" + std::to_string(seed);
      testutil::write_file(stem + ".cfg", text);
      testutil::write_file(stem + ".err", *err + "\n");
      std::fprintf(stderr, "FAIL seed=%llu: %s\n",
                   static_cast<unsigned long long>(seed), err->c_str());
    }
    if ((i + 1) % 50 == 0 || i + 1 == count)
      std::fprintf(stderr, "fuzz_scenarios: %llu/%llu checked, %llu failed\n",
                   static_cast<unsigned long long>(i + 1),
                   static_cast<unsigned long long>(count),
                   static_cast<unsigned long long>(failures));
  }
  if (failures != 0) {
    std::fprintf(stderr, "fuzz_scenarios: %llu failing configs in %s/\n",
                 static_cast<unsigned long long>(failures), outdir.c_str());
    return 1;
  }
  std::printf("fuzz_scenarios: %llu scenarios, all invariants held\n",
              static_cast<unsigned long long>(count));
  return 0;
}
