// Figure 12: pairwise comparison of cloud providers' IPv6 support over
// shared multi-cloud tenants — two-sided Wilcoxon signed-rank tests with
// Holm-Bonferroni correction, reported as effect sizes r with the number of
// differing tenants in parentheses.
#include <algorithm>

#include "core/cloud_analysis.h"

#include "bench_common.h"

using namespace nbv6;

int main() {
  bench::section("Figure 12: pairwise Wilcoxon heatmap of provider IPv6 preference");
  cloud::ProviderCatalog providers;
  auto universe = bench::make_universe(providers);
  auto survey = core::run_server_survey(universe, web::Epoch::jul2025, 42);
  auto records = core::build_domain_records(universe, survey);

  cloud::MultiCloudComparison cmp(records, providers,
                                  core::paper_org_merge_map());
  std::printf("multi-cloud tenants: %d; orgs: %zu; pairs: %zu\n",
              cmp.multi_cloud_tenant_count(), cmp.orgs().size(),
              cmp.pairs().size());

  // Order orgs by how often they win significant comparisons, as the
  // paper's axes are ordered.
  auto orgs = cmp.orgs();
  std::sort(orgs.begin(), orgs.end(), [&](const auto& a, const auto& b) {
    return cmp.wins(a) > cmp.wins(b);
  });

  std::printf("\norgs by significant wins:\n");
  for (const auto& o : orgs)
    std::printf("  %-44s wins=%d\n", o.c_str(), cmp.wins(o));

  std::printf("\nsignificant pairs (Holm-Bonferroni alpha=0.05):\n");
  for (const auto& p : cmp.pairs()) {
    if (!p.comparable) continue;
    std::printf("  %-34s vs %-34s r=%+.2f (n=%d)%s\n", p.org1.c_str(),
                p.org2.c_str(), p.effect_size_r, p.differing_tenants,
                p.significant ? "  *significant*" : "");
  }

  std::printf(
      "\nPaper reference: 67 of 78 pairs comparable; Cloudflare and Akamai "
      "(merged\nentities) show consistently better-than-typical IPv6 "
      "support; Bunnyway stands out\nvia Datacamp shared hosting; smaller "
      "traditional hosts rank lowest.\n");
  return 0;
}
