// Scenario sweep driver: an N-variant what-if forest off one base scenario,
// executed on the pass-graph pipeline (engine/pipeline.h +
// core/scenario_pipeline.h) with a shared pass cache.
//
// Every variant keeps the base population slice and differs only in its
// timeline (variant v > 0 appends one cpe_fix wave with a variant-specific
// repair fraction), so all N "sample" passes digest identically: the base
// population is sampled exactly once for the whole forest, every other
// variant binds the cached value. The driver *asserts* that via the
// per-pass execution counters — if sampling ran more than once the reuse
// machinery is broken and the run exits non-zero. A warm re-run of the
// first variant then demonstrates the fully-cached fixpoint (zero
// executed passes).
//
//   ./build/sweep_scenarios [--variants=25 --lanes=0 --residences=48
//                            --days=14 --seed=20260808 --outdir=DIR
//                            --scenario=base.cfg]
//
// With --outdir, each variant also renders its panel/CDF/summary files
// there through the uncached sink passes. With --scenario, the base config
// is loaded from a scenario file instead of the embedded defaults.
//
// Output ends with one machine-greppable `RESULT` line (the CI artifact).
#include <chrono>
#include <cstdio>
#include <filesystem>
#include <memory>
#include <string>
#include <vector>

#include "bench_cli.h"
#include "core/scenario_pipeline.h"
#include "engine/fleet.h"
#include "engine/pipeline.h"
#include "engine/run_spec.h"
#include "engine/thread_pool.h"
#include "traffic/service_catalog.h"

using namespace nbv6;

int main(int argc, char** argv) {
  int variants = 25;
  int lanes = 0;
  std::string outdir;
  std::string scenario_path;
  engine::FleetConfig base;
  base.residences = 48;
  base.days = 14;
  base.seed = 20260808;

  bench::Cli cli("sweep_scenarios",
                 "What-if scenario forest on the shared-cache pass pipeline");
  cli.flag_int("variants", &variants, "what-if variants to run");
  cli.flag_int("lanes", &lanes, "worker lanes, 0 = hw concurrency");
  cli.flag_int("residences", &base.residences, "base fleet size");
  cli.flag_int("days", &base.days, "base horizon in days");
  cli.flag_u64("seed", &base.seed, "base scenario master seed");
  cli.flag_string("outdir", &outdir,
                  "also render per-variant panel/CDF/summary files here");
  cli.flag_string("scenario", &scenario_path,
                  "load the base config from this scenario file");
  if (!cli.parse(argc, argv)) return cli.exit_code();
  if (variants < 1) {
    std::fprintf(stderr, "--variants must be >= 1\n");
    return 2;
  }
  if (!outdir.empty()) {
    std::error_code ec;
    std::filesystem::create_directories(outdir, ec);
    if (ec) {
      std::fprintf(stderr, "cannot create --outdir %s: %s\n", outdir.c_str(),
                   ec.message().c_str());
      return 2;
    }
  }
  if (!scenario_path.empty()) {
    std::string error;
    auto loaded = engine::FleetConfig::load(scenario_path, &error);
    if (!loaded) {
      std::fprintf(stderr, "%s: %s\n", scenario_path.c_str(), error.c_str());
      return 2;
    }
    base = *loaded;
  }

  const auto catalog = traffic::build_paper_catalog();
  std::unique_ptr<engine::ThreadPool> pool;
  if (lanes <= 0) lanes = engine::FleetEngine(catalog, 0).lanes();
  if (lanes > 1) pool = std::make_unique<engine::ThreadPool>(lanes - 1);

  std::printf("sweep: %d variants of %d residences x %d days on %d lane(s)\n",
              variants, base.residences, base.days, lanes);

  // One pipeline per variant, one cache for the forest. Variant v > 0
  // appends a cpe_fix wave whose repair fraction sweeps (0, 1]: only the
  // timeline slice changes, so sample stays digest-identical across the
  // whole forest while timeline/simulate/analysis re-run per variant.
  engine::PassCache cache;
  std::vector<std::unique_ptr<engine::Pipeline>> pipes;
  std::size_t executed = 0;
  std::size_t cached = 0;
  const auto t0 = std::chrono::steady_clock::now();
  for (int v = 0; v < variants; ++v) {
    engine::FleetConfig cfg = base;
    if (v > 0) {
      engine::TimelineEvent fix;
      fix.kind = engine::TimelineEventKind::cpe_fix;
      fix.start_day = cfg.days / 4;
      fix.end_day = cfg.days - 1;
      fix.fraction = static_cast<double>(v) / variants;
      cfg.timeline.events.push_back(fix);
    }
    core::ScenarioPassOptions opts;
    opts.sink_dir = outdir;
    opts.scenario_tag = "variant_" + std::to_string(v);
    pipes.push_back(std::make_unique<engine::Pipeline>(
        core::make_scenario_pipeline(cfg, catalog, opts)));
    const auto stats = pipes.back()->run(&cache, pool.get());
    executed += stats.executed;
    cached += stats.cached;
  }
  const auto t1 = std::chrono::steady_clock::now();
  const double secs = std::chrono::duration<double>(t1 - t0).count();

  // The tentpole invariant: the base population was sampled exactly once
  // across the whole forest.
  std::uint64_t sample_execs = 0;
  for (const auto& p : pipes) sample_execs += p->executions("sample");
  if (sample_execs != 1) {
    std::fprintf(stderr,
                 "FAIL: sample pass executed %llu times across %d variants "
                 "(expected exactly 1 — shared-pass reuse is broken)\n",
                 static_cast<unsigned long long>(sample_execs), variants);
    return 1;
  }

  // Warm re-run of the base variant: every cacheable pass must hit.
  const auto warm = pipes[0]->run(&cache, pool.get());
  const std::size_t sinks = outdir.empty() ? 0 : 3;
  if (warm.executed != sinks) {
    std::fprintf(stderr,
                 "FAIL: warm re-run executed %zu passes (expected %zu)\n",
                 warm.executed, sinks);
    return 1;
  }

  // Spot equivalence: the pipelined base result matches the standalone
  // engine path on the horizon totals (byte-level identity across lane
  // counts is pinned by pipeline_test's golden-parity suite).
  const auto& piped = pipes[0]->output<engine::FleetResult>("fleet_result");
  engine::FleetEngine standalone(catalog, lanes);
  const auto direct = standalone.run(base);
  if (piped.totals.sessions != direct.totals.sessions ||
      piped.totals.flows != direct.totals.flows ||
      piped.totals.he_failures != direct.totals.he_failures) {
    std::fprintf(stderr, "FAIL: pipelined totals diverge from standalone\n");
    return 1;
  }

  std::printf(
      "  base sampled once; %zu passes executed, %zu served from cache\n"
      "  warm re-run: %zu executed / %zu cached; cache holds %zu results\n",
      executed, cached, warm.executed, warm.cached, cache.size());
  std::printf(
      "RESULT variants=%d lanes=%d sample_executions=%llu passes_executed=%zu "
      "passes_cached=%zu warm_executed=%zu cache_entries=%zu seconds=%.6f\n",
      variants, lanes, static_cast<unsigned long long>(sample_execs), executed,
      cached, warm.executed, cache.size(), secs);
  return 0;
}
