// Scenario sweep driver: an N-variant what-if forest off one base scenario,
// executed on the pass-graph pipeline (engine/pipeline.h +
// core/scenario_pipeline.h) with a shared pass cache.
//
// Every variant keeps the base population slice and differs only in its
// timeline (variant v > 0 appends one cpe_fix wave with a variant-specific
// repair fraction), so all N "sample" passes digest identically: the base
// population is sampled exactly once for the whole forest, every other
// variant binds the cached value. The driver *asserts* that via the
// per-pass execution counters — if sampling ran more than once the reuse
// machinery is broken and the run exits non-zero. A warm re-run of the
// first variant then demonstrates the fully-cached fixpoint (zero
// executed passes).
//
// With --workers > 1 (or --overlap) the driver re-runs the same forest
// overlapped: engine::ForestScheduler merges all N pipelines into one
// frontier and dispatches independent passes from different variants
// concurrently (variant B simulates while variant A computes panels),
// releasing transient fleets (population, planned_fleet) once their last
// consumer ran. The overlapped outputs are diffed byte-for-byte against
// the serial pass — any divergence exits non-zero — and the RESULT line
// reports both wall-clocks plus the peak transient residency.
//
//   ./build/sweep_scenarios [--variants=25 --lanes=0 --workers=0 --overlap
//                            --residences=48 --days=14 --seed=20260808
//                            --outdir=DIR --scenario=base.cfg]
//
// With --outdir, each variant also renders its panel/CDF/summary files
// there through the uncached sink passes. With --scenario, the base config
// is loaded from a scenario file instead of the embedded defaults.
//
// Output ends with one machine-greppable `RESULT` line (the CI artifact).
#include <chrono>
#include <cstdio>
#include <filesystem>
#include <memory>
#include <string>
#include <vector>

#include "bench_cli.h"
#include "core/scenario_pipeline.h"
#include "engine/fleet.h"
#include "engine/pipeline.h"
#include "engine/run_spec.h"
#include "engine/thread_pool.h"
#include "testutil.h"
#include "traffic/service_catalog.h"

using namespace nbv6;

namespace {

// Canonical text of one variant's pipelined outcome — the byte-level
// equality the serial-vs-overlapped diff runs on (the same serializer the
// golden suite pins across compilers and lane counts).
std::string serialize_variant(const engine::FleetConfig& cfg,
                              engine::Pipeline& pipe) {
  testutil::ScenarioRun run;
  run.cfg = cfg;
  run.result = pipe.output<engine::FleetResult>("fleet_result");
  run.report = pipe.output<core::FleetStatsReport>("stats_report");
  run.window_panel = pipe.output<core::GroupComparison>("window_panel");
  return testutil::canonical_serialize(run);
}

}  // namespace

int main(int argc, char** argv) {
  int variants = 25;
  int lanes = 0;
  int workers = 0;
  bool overlap = false;
  std::string outdir;
  std::string scenario_path;
  engine::FleetConfig base;
  base.residences = 48;
  base.days = 14;
  base.seed = 20260808;

  bench::Cli cli("sweep_scenarios",
                 "What-if scenario forest on the shared-cache pass pipeline");
  cli.flag_int("variants", &variants, "what-if variants to run");
  cli.flag_int("lanes", &lanes, "worker lanes, 0 = hw concurrency");
  cli.flag_int("workers", &workers,
               "overlapped passes in flight (>1 enables the overlapped "
               "forest; 0 = lanes when --overlap)");
  cli.flag_bool("overlap", &overlap,
                "run the overlapped cross-variant forest and diff it "
                "against the serial path");
  cli.flag_int("residences", &base.residences.mut(), "base fleet size");
  cli.flag_int("days", &base.days.mut(), "base horizon in days");
  cli.flag_u64("seed", &base.seed.mut(), "base scenario master seed");
  cli.flag_string("outdir", &outdir,
                  "also render per-variant panel/CDF/summary files here");
  cli.flag_string("scenario", &scenario_path,
                  "load the base config from this scenario file");
  if (!cli.parse(argc, argv)) return cli.exit_code();
  if (variants < 1) {
    std::fprintf(stderr, "--variants must be >= 1\n");
    return 2;
  }
  if (!outdir.empty()) {
    std::error_code ec;
    std::filesystem::create_directories(outdir, ec);
    if (ec) {
      std::fprintf(stderr, "cannot create --outdir %s: %s\n", outdir.c_str(),
                   ec.message().c_str());
      return 2;
    }
  }
  if (!scenario_path.empty()) {
    std::string error;
    auto loaded = engine::FleetConfig::load(scenario_path, &error);
    if (!loaded) {
      std::fprintf(stderr, "%s: %s\n", scenario_path.c_str(), error.c_str());
      return 2;
    }
    base = *loaded;
  }

  const auto catalog = traffic::build_paper_catalog();
  std::unique_ptr<engine::ThreadPool> pool;
  if (lanes <= 0) lanes = engine::FleetEngine(catalog, 0).lanes();
  if (lanes > 1) pool = std::make_unique<engine::ThreadPool>(lanes - 1);
  if (workers > 1) overlap = true;
  if (overlap && workers <= 1) workers = lanes;
  if (!overlap) workers = 1;

  std::printf("sweep: %d variants of %d residences x %d days on %d lane(s)",
              variants, base.residences.get(), base.days.get(), lanes);
  if (overlap)
    std::printf(", overlapped at %d worker(s)", workers);
  std::printf("\n");

  // Variant configs: variant v > 0 appends a cpe_fix wave whose repair
  // fraction sweeps (0, 1]: only the timeline slice changes, so sample
  // stays digest-identical across the whole forest while
  // timeline/simulate/analysis re-run per variant.
  std::vector<engine::FleetConfig> cfgs;
  std::vector<core::ScenarioPassOptions> opts;
  for (int v = 0; v < variants; ++v) {
    engine::FleetConfig cfg = base;
    if (v > 0) {
      engine::TimelineEvent fix;
      fix.kind = engine::TimelineEventKind::cpe_fix;
      fix.start_day = cfg.days / 4;
      fix.end_day = cfg.days - 1;
      fix.fraction = static_cast<double>(v) / variants;
      cfg.timeline->events.push_back(fix);
    }
    core::ScenarioPassOptions o;
    o.sink_dir = outdir;
    o.scenario_tag = "variant_" + std::to_string(v);
    cfgs.push_back(std::move(cfg));
    opts.push_back(std::move(o));
  }

  // ------------------------------------------------------ serial reference
  // One pipeline per variant, one cache for the forest, run to completion
  // in variant order — the reference the overlapped pass is diffed against.
  engine::PassCache cache;
  std::vector<std::unique_ptr<engine::Pipeline>> pipes;
  std::size_t executed = 0;
  std::size_t cached = 0;
  const auto t0 = std::chrono::steady_clock::now();
  for (int v = 0; v < variants; ++v) {
    pipes.push_back(std::make_unique<engine::Pipeline>(
        core::make_scenario_pipeline(cfgs[v], catalog, opts[v])));
    const auto stats = pipes.back()->run(&cache, pool.get());
    executed += stats.executed;
    cached += stats.cached;
  }
  const auto t1 = std::chrono::steady_clock::now();
  const double serial_secs = std::chrono::duration<double>(t1 - t0).count();

  // The tentpole invariant: the base population was sampled exactly once
  // across the whole forest.
  std::uint64_t sample_execs = 0;
  for (const auto& p : pipes) sample_execs += p->executions("sample");
  if (sample_execs != 1) {
    std::fprintf(stderr,
                 "FAIL: sample pass executed %llu times across %d variants "
                 "(expected exactly 1 — shared-pass reuse is broken)\n",
                 static_cast<unsigned long long>(sample_execs), variants);
    return 1;
  }

  // Warm re-run of the base variant: every cacheable pass must hit.
  const auto warm = pipes[0]->run(&cache, pool.get());
  const std::size_t sinks = outdir.empty() ? 0 : 3;
  if (warm.executed != sinks) {
    std::fprintf(stderr,
                 "FAIL: warm re-run executed %zu passes (expected %zu)\n",
                 warm.executed, sinks);
    return 1;
  }

  // Spot equivalence: the pipelined base result matches the standalone
  // engine path on the horizon totals (byte-level identity across lane
  // counts is pinned by pipeline_test's golden-parity suite).
  const auto& piped = pipes[0]->output<engine::FleetResult>("fleet_result");
  engine::FleetEngine standalone(catalog, lanes);
  const auto direct = standalone.run(base);
  if (piped.totals.sessions != direct.totals.sessions ||
      piped.totals.flows != direct.totals.flows ||
      piped.totals.he_failures != direct.totals.he_failures) {
    std::fprintf(stderr, "FAIL: pipelined totals diverge from standalone\n");
    return 1;
  }

  std::vector<std::string> serial_canon;
  for (int v = 0; v < variants; ++v)
    serial_canon.push_back(serialize_variant(cfgs[v], *pipes[v]));

  std::printf(
      "  base sampled once; %zu passes executed, %zu served from cache\n"
      "  warm re-run: %zu executed / %zu cached; cache holds %zu results\n",
      executed, cached, warm.executed, warm.cached, cache.size());

  // ----------------------------------------------------- overlapped forest
  // Fresh pipelines, fresh cache: the overlapped run must reproduce the
  // serial outputs from nothing, not bind the serial run's warm entries.
  double overlap_secs = 0.0;
  engine::ForestScheduler::Stats fstats;
  std::uint64_t forest_sample_execs = 0;
  if (overlap) {
    std::unique_ptr<engine::ThreadPool> forest_pool;
    if (workers > 1)
      forest_pool = std::make_unique<engine::ThreadPool>(workers);

    engine::PassCache forest_cache;
    std::vector<std::unique_ptr<engine::Pipeline>> forest_pipes;
    std::vector<engine::Pipeline*> ptrs;
    for (int v = 0; v < variants; ++v) {
      forest_pipes.push_back(std::make_unique<engine::Pipeline>(
          core::make_scenario_pipeline(cfgs[v], catalog, opts[v])));
      ptrs.push_back(forest_pipes.back().get());
    }
    engine::ForestScheduler::Options fopts;
    fopts.pool = forest_pool ? forest_pool.get() : pool.get();
    fopts.workers = workers;
    fopts.transient = core::scenario_transient_resources();

    const auto f0 = std::chrono::steady_clock::now();
    fstats = engine::ForestScheduler::run(ptrs, forest_cache, fopts);
    const auto f1 = std::chrono::steady_clock::now();
    overlap_secs = std::chrono::duration<double>(f1 - f0).count();

    for (const auto& p : forest_pipes)
      forest_sample_execs += p->executions("sample");
    if (forest_sample_execs != 1) {
      std::fprintf(stderr,
                   "FAIL: overlapped forest executed sample %llu times "
                   "(expected exactly 1 — in-flight dedup is broken)\n",
                   static_cast<unsigned long long>(forest_sample_execs));
      return 1;
    }
    for (int v = 0; v < variants; ++v) {
      const std::string got = serialize_variant(cfgs[v], *forest_pipes[v]);
      if (got != serial_canon[v]) {
        std::fprintf(stderr,
                     "FAIL: overlapped variant %d diverges from serial:\n%s\n",
                     v, testutil::first_diff(got, serial_canon[v]).c_str());
        return 1;
      }
    }
    std::printf(
        "  overlapped: %zu executed / %zu cached / %zu deduped; "
        "%zu transients released, peak residency %zu\n"
        "  serial %.3fs vs overlapped %.3fs — outputs byte-identical\n",
        fstats.executed, fstats.cached, fstats.deduped, fstats.released,
        fstats.peak_resident, serial_secs, overlap_secs);
  }

  std::printf(
      "RESULT variants=%d lanes=%d workers=%d sample_executions=%llu "
      "passes_executed=%zu passes_cached=%zu warm_executed=%zu "
      "cache_entries=%zu seconds=%.6f overlap_seconds=%.6f "
      "overlap_sample_executions=%llu overlap_deduped=%zu "
      "peak_pass_residency=%zu released=%zu identical=%d\n",
      variants, lanes, workers,
      static_cast<unsigned long long>(sample_execs), executed, cached,
      warm.executed, cache.size(), serial_secs, overlap_secs,
      static_cast<unsigned long long>(forest_sample_execs), fstats.deduped,
      fstats.peak_resident, fstats.released, overlap ? 1 : 0);
  return 0;
}
