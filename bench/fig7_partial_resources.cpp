// Figure 7: CDFs of the count and the fraction of IPv4-only resources used
// by IPv6-partial websites.
#include "web/metrics.h"

#include "bench_common.h"

using namespace nbv6;

int main() {
  bench::section("Figure 7: IPv4-only resources on IPv6-partial sites");
  cloud::ProviderCatalog providers;
  auto universe = bench::make_universe(providers);
  auto survey = core::run_server_survey(universe, web::Epoch::jul2025, 42);
  web::SpanAnalysis span(universe, survey.crawls, survey.classifications);

  std::vector<double> counts, fracs;
  for (const auto& p : span.partial_sites()) {
    counts.push_back(p.v4only_resources);
    fracs.push_back(static_cast<double>(p.v4only_resources) /
                    static_cast<double>(p.total_resources));
  }

  bench::print_cdf(counts, "number of IPv4-only resources per partial site", 10);
  bench::print_cdf(fracs, "fraction of IPv4-only resources per partial site", 10);
  std::printf("\nquartiles: count p25=%.0f p50=%.0f p75=%.0f | fraction "
              "p25=%.2f p50=%.2f p75=%.2f\n",
              stats::quantile(counts, .25), stats::quantile(counts, .5),
              stats::quantile(counts, .75), stats::quantile(fracs, .25),
              stats::quantile(fracs, .5), stats::quantile(fracs, .75));
  std::printf(
      "\nPaper reference: count p25=3 p50=7 p75=21; fraction p25=0.09 "
      "p50=0.21 p75=0.41.\n75%% of partial sites need three or more "
      "IPv4-only resources fixed.\n");
  return 0;
}
