// Figure 11 / Table 3: IPv6-readiness breakdown (IPv4-only / IPv6-full /
// IPv6-only) of the top cloud providers by number of hosted domains, from
// the FQDNs observed during the crawl, attributed via BGP + AS-to-Org.
#include "core/cloud_analysis.h"

#include "bench_common.h"

using namespace nbv6;

int main() {
  bench::section("Figure 11 / Table 3: per-provider IPv6 readiness");
  cloud::ProviderCatalog providers;
  auto universe = bench::make_universe(providers);
  auto survey = core::run_server_survey(universe, web::Epoch::jul2025, 42);
  auto records = core::build_domain_records(universe, survey);
  std::printf("observed FQDN records: %zu\n", records.size());

  auto rows = cloud::provider_breakdown(records, providers);
  std::printf("%-44s %8s %9s %9s %9s\n", "Organization", "domains",
              "IPv4-only", "IPv6-full", "IPv6-only");
  for (const auto& r : rows) {
    std::printf("%-44s %8d %8.1f%% %8.1f%% %8.1f%%\n", r.org.c_str(), r.total,
                r.pct(r.v4_only), r.pct(r.v6_full), r.pct(r.v6_only));
  }

  std::printf(
      "\nPaper reference (IPv6-full): Cloudflare 85.2%%, Google 67.7%%, "
      "Akamai Intl 50.4%%,\nDatacamp 39.6%%, Microsoft 39.7%%, Fastly "
      "34.3%%, Amazon 24.6%%, OVH 13.0%%,\nDigitalOcean 9.2%%, Akamai Tech "
      "3.4%%, Incapsula 3.5%%; Bunnyway is 99.5%% IPv6-only\n(its A records "
      "live in Datacamp's address space).\n");
  return 0;
}
