// Figure 9: VirusTotal-style categories of the heavy-hitter IPv4-only
// resource domains (span >= 100 at paper scale; scaled threshold here).
#include <map>

#include "web/metrics.h"

#include "bench_common.h"

using namespace nbv6;

int main() {
  bench::section("Figure 9: categories of heavy-hitter IPv4-only domains");
  cloud::ProviderCatalog providers;
  auto universe = bench::make_universe(providers);
  auto survey = core::run_server_survey(universe, web::Epoch::jul2025, 42);
  web::SpanAnalysis span(universe, survey.crawls, survey.classifications);

  // Paper threshold is span >= 100 on 24k partial sites; scale it.
  int threshold = std::max(
      5, static_cast<int>(100.0 * static_cast<double>(span.partial_sites().size()) /
                          24384.0));
  auto hh = span.heavy_hitters(threshold);
  std::printf("heavy hitters (span >= %d): %zu\n", threshold, hh.size());

  std::map<std::string, int> counts;
  for (const auto& d : hh) {
    auto cat = universe.categorize(d.etld1);
    std::string label =
        cat ? std::string(to_string(*cat)) : std::string("uncategorized");
    ++counts[label];
  }
  for (const auto& [cat, n] : counts)
    std::printf("  %-26s %5d\n", cat.c_str(), n);

  std::printf(
      "\nPaper reference: of 396 heavy hitters, advertising accounts for "
      "nearly half,\nfollowed by information technology, trackers, content "
      "delivery, and analytics.\n");
  return 0;
}
