// Fleet figure: cross-fleet Wilcoxon panels — Fig. 12's Holm-corrected
// pairwise comparison machinery applied to residence strata instead of
// cloud providers. Each default group pair (healthy-v6 vs broken-CPE,
// dual-stack vs v4-only, streamer vs baseline, visible vs opt-out) gets an
// unpaired rank-sum panel over every fleet metric; active homes get the
// paired signed-rank metric panel; and the horizon's two halves get the
// paired pre/post day-window panel (day-resolved metrics, including the
// per-day session stats behind he_failure_rate). Writes one TSV for
// plotting or CI artifact upload and prints it to stdout.
//
//   ./build/fleet_fig_wilcoxon [--residences=N --days=N --seed=S
//                               --threads=T] [panel-out.tsv]
//
// (See --help; the old NBV6_FLEET_* env knobs remain deprecated fallbacks.)
#include <cstdio>
#include <string>

#include "core/fleet_analysis.h"
#include "engine/fleet.h"
#include "traffic/service_catalog.h"

#include "bench_common.h"

using namespace nbv6;

int main(int argc, char** argv) {
  auto cfg = bench::default_bench_fleet();
  std::string panel_path = "fleet_wilcoxon.tsv";
  bench::Cli cli("fleet_fig_wilcoxon",
                 "Cross-fleet Wilcoxon group-comparison panels");
  bench::register_fleet_flags(cli, cfg);
  cli.positional("panel-out.tsv", &panel_path, "panel TSV output");
  if (!cli.parse(argc, argv)) return cli.exit_code();

  bench::section("Fleet figure: Wilcoxon group-comparison panels");
  auto catalog = traffic::build_paper_catalog();
  engine::FleetEngine fleet(catalog, cfg.threads);
  std::printf("fleet: %d residences x %d days on %d lane(s)\n",
              cfg.residences.get(), cfg.days.get(), fleet.lanes());
  auto result = fleet.run(cfg);

  auto report = core::fleet_stats_report(result, fleet.pool());

  std::FILE* out = std::fopen(panel_path.c_str(), "w");
  if (out == nullptr) {
    std::fprintf(stderr, "cannot open %s for writing\n", panel_path.c_str());
    return 1;
  }
  bool first = true;
  for (const auto& cmp : report.comparisons) {
    std::printf("\n-- %s vs %s --\n", core::to_string(cmp.group_a),
                core::to_string(cmp.group_b));
    core::write_panel_tsv(stdout, cmp);
    core::write_panel_tsv(out, cmp, first);
    first = false;
  }
  std::printf("\n-- paired metric panel (active homes) --\n");
  core::write_panel_tsv(stdout, report.paired);
  core::write_panel_tsv(out, report.paired, first);
  first = false;

  // Pre/post panel over the horizon's halves: with a timeline this is the
  // before/after comparison, without one a self-check near the null. The
  // day-resolved session stats make every row real — he_failure_rate
  // included.
  if (cfg.days >= 2) {
    core::DayWindow pre{0, cfg.days / 2 - 1};
    core::DayWindow post{cfg.days / 2, cfg.days - 1};
    auto windows =
        core::compare_windows(result, core::default_fleet_metrics(), pre,
                              post, core::FleetGroup::all, fleet.pool());
    std::printf("\n-- days %d-%d vs days %d-%d (paired, Holm alpha=0.05) --\n",
                pre.first, pre.last, post.first, post.last);
    core::write_panel_tsv(stdout, windows);
    core::write_panel_tsv(out, windows, first);
  }
  std::fclose(out);
  std::printf("\nwrote %s\n", panel_path.c_str());

  std::printf(
      "\nShape check vs paper: the broken-CPE and v4-only strata sit far "
      "below their\ncounterparts on every v6-fraction metric (large negative "
      "effect r, significant\nafter Holm); volume metrics separate streamers "
      "from baseline homes.\n");
  return 0;
}
