// One flag grammar for every experiment binary.
//
// The harness binaries used to scatter per-binary environment knobs
// (NBV6_FLEET_*, NBV6_FIREHOSE_*) that were invisible to --help and easy
// to typo silently. Cli gives them a single declarative parser:
//
//   int residences = 256;
//   bench::Cli cli("fleet_fig_cdf", "Fleet population CDF figure");
//   cli.flag_int("residences", &residences, "fleet size",
//                "NBV6_FLEET_RESIDENCES");
//   if (!cli.parse(argc, argv)) return cli.exit_code();
//
// Grammar: `--key=value`, `--key value`, bare `--key` for booleans, and
// `--help`. Values go through the same cfgparse lexers the scenario-file
// parser uses, so "what is a valid int" has one answer repo-wide; unknown
// flags and malformed values fail loudly with usage on stderr. Bare
// positionals (declared in order) keep legacy invocations like
// `fuzz_scenarios 64 1 outdir` working.
//
// The old environment variables survive as *deprecated fallbacks*: when a
// flag is absent but its registered env var is set, the env value applies
// and a one-line deprecation warning lands on stderr. Flags always win.
#pragma once

#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <string_view>
#include <variant>
#include <vector>

#include "engine/timeline.h"  // cfgparse

namespace nbv6::bench {

class Cli {
 public:
  Cli(std::string program, std::string description)
      : program_(std::move(program)), description_(std::move(description)) {}

  void flag_int(std::string name, int* target, std::string help,
                const char* deprecated_env = nullptr) {
    flags_.push_back({std::move(name), target, std::move(help),
                      deprecated_env == nullptr ? "" : deprecated_env});
  }
  void flag_u64(std::string name, std::uint64_t* target, std::string help,
                const char* deprecated_env = nullptr) {
    flags_.push_back({std::move(name), target, std::move(help),
                      deprecated_env == nullptr ? "" : deprecated_env});
  }
  void flag_double(std::string name, double* target, std::string help,
                   const char* deprecated_env = nullptr) {
    flags_.push_back({std::move(name), target, std::move(help),
                      deprecated_env == nullptr ? "" : deprecated_env});
  }
  void flag_string(std::string name, std::string* target, std::string help,
                   const char* deprecated_env = nullptr) {
    flags_.push_back({std::move(name), target, std::move(help),
                      deprecated_env == nullptr ? "" : deprecated_env});
  }
  /// Bare `--name` sets true; `--name=true|false|1|0` sets explicitly.
  void flag_bool(std::string name, bool* target, std::string help,
                 const char* deprecated_env = nullptr) {
    flags_.push_back({std::move(name), target, std::move(help),
                      deprecated_env == nullptr ? "" : deprecated_env});
  }
  /// Optional bare positional, consumed in declaration order; always a
  /// string (legacy callers parse as they always did).
  void positional(std::string name, std::string* target, std::string help) {
    positionals_.push_back({std::move(name), target, std::move(help)});
  }

  /// True when parsing succeeded and the program should proceed. False
  /// after --help (exit_code() == 0) or a parse error (exit_code() == 2,
  /// message + usage already on stderr).
  bool parse(int argc, char** argv) {
    std::vector<bool> given(flags_.size(), false);
    std::size_t next_pos = 0;
    for (int i = 1; i < argc; ++i) {
      std::string_view arg = argv[i];
      if (arg == "--help" || arg == "-h") {
        print_usage(stdout);
        exit_code_ = 0;
        return false;
      }
      if (arg.rfind("--", 0) == 0) {
        std::string_view body = arg.substr(2);
        std::string_view name = body;
        std::string_view value;
        bool has_value = false;
        if (auto eq = body.find('='); eq != std::string_view::npos) {
          name = body.substr(0, eq);
          value = body.substr(eq + 1);
          has_value = true;
        }
        Flag* f = find_flag(name);
        if (f == nullptr) return fail("unknown flag '--" + std::string(name) + "'");
        if (!has_value && !std::holds_alternative<bool*>(f->target)) {
          if (i + 1 >= argc)
            return fail("flag '--" + std::string(name) + "' needs a value");
          value = argv[++i];
          has_value = true;
        }
        if (!apply(*f, has_value ? value : std::string_view("true")))
          return fail("invalid value '" + std::string(value) + "' for '--" +
                      std::string(name) + "'");
        given[static_cast<std::size_t>(f - flags_.data())] = true;
      } else {
        if (next_pos >= positionals_.size())
          return fail("unexpected argument '" + std::string(arg) + "'");
        *positionals_[next_pos++].target = std::string(arg);
      }
    }
    // Deprecated env fallbacks: only where no flag was given.
    for (std::size_t i = 0; i < flags_.size(); ++i) {
      Flag& f = flags_[i];
      if (given[i] || f.env.empty()) continue;
      const char* v = std::getenv(f.env.c_str());
      if (v == nullptr) continue;
      if (!apply(f, v))
        return fail("invalid value '" + std::string(v) +
                    "' in deprecated env " + f.env);
      std::fprintf(stderr,
                   "%s: warning: %s is deprecated, use --%s=%s instead\n",
                   program_.c_str(), f.env.c_str(), f.name.c_str(), v);
    }
    return true;
  }

  [[nodiscard]] int exit_code() const { return exit_code_; }

  void print_usage(std::FILE* out) const {
    std::fprintf(out, "%s: %s\n\nusage: %s [--flag=value ...]", program_.c_str(),
                 description_.c_str(), program_.c_str());
    for (const auto& p : positionals_)
      std::fprintf(out, " [%s]", p.name.c_str());
    std::fprintf(out, "\n\nflags:\n");
    for (const auto& f : flags_) {
      std::string label = "--" + f.name + "=" + default_text(f);
      std::fprintf(out, "  %-34s %s%s%s\n", label.c_str(), f.help.c_str(),
                   f.env.empty() ? "" : " [env: ",
                   f.env.empty() ? "" : (f.env + ", deprecated]").c_str());
    }
    for (const auto& p : positionals_)
      std::fprintf(out, "  %-34s %s (positional)\n", p.name.c_str(),
                   p.help.c_str());
  }

 private:
  using Target =
      std::variant<int*, std::uint64_t*, double*, std::string*, bool*>;
  struct Flag {
    std::string name;
    Target target;
    std::string help;
    std::string env;  ///< deprecated fallback env var ("" = none)
  };
  struct Positional {
    std::string name;
    std::string* target;
    std::string help;
  };

  Flag* find_flag(std::string_view name) {
    for (auto& f : flags_)
      if (f.name == name) return &f;
    return nullptr;
  }

  static bool apply(Flag& f, std::string_view value) {
    using engine::cfgparse::parse_double;
    using engine::cfgparse::parse_int;
    using engine::cfgparse::parse_u64;
    if (auto* p = std::get_if<int*>(&f.target)) return parse_int(value, **p);
    if (auto* p = std::get_if<std::uint64_t*>(&f.target))
      return parse_u64(value, **p);
    if (auto* p = std::get_if<double*>(&f.target))
      return parse_double(value, **p);
    if (auto* p = std::get_if<std::string*>(&f.target)) {
      **p = std::string(value);
      return true;
    }
    auto* p = std::get_if<bool*>(&f.target);
    if (value == "true" || value == "1") return **p = true, true;
    if (value == "false" || value == "0") return (**p = false), true;
    return false;
  }

  static std::string default_text(const Flag& f) {
    if (auto* p = std::get_if<int*>(&f.target)) return std::to_string(**p);
    if (auto* p = std::get_if<std::uint64_t*>(&f.target))
      return std::to_string(**p);
    if (auto* p = std::get_if<double*>(&f.target)) {
      char buf[32];
      std::snprintf(buf, sizeof buf, "%g", **p);
      return buf;
    }
    if (auto* p = std::get_if<std::string*>(&f.target)) return **p;
    return **std::get_if<bool*>(&f.target) ? "true" : "false";
  }

  bool fail(const std::string& message) {
    std::fprintf(stderr, "%s: %s\n\n", program_.c_str(), message.c_str());
    print_usage(stderr);
    exit_code_ = 2;
    return false;
  }

  std::string program_;
  std::string description_;
  std::vector<Flag> flags_;
  std::vector<Positional> positionals_;
  int exit_code_ = 0;
};

}  // namespace nbv6::bench
