// Google-benchmark microbenchmarks for the hot substrate paths: address
// parsing, LPM lookup, AES/CryptoPAN, DNS resolution, conntrack churn,
// LOESS/MSTL, and Wilcoxon — the operations every experiment binary leans
// on.
#include <benchmark/benchmark.h>

#include <vector>

#include "dns/resolver.h"
#include "engine/firehose.h"
#include "engine/flat_conntrack.h"
#include "engine/fleet.h"
#include "engine/thread_pool.h"
#include "flowmon/conntrack.h"
#include "net/cryptopan.h"
#include "net/lpm_trie.h"
#include "stats/fleet_stats.h"
#include "stats/loess.h"
#include "stats/rng.h"
#include "stats/stl.h"
#include "stats/wilcoxon.h"

namespace {

using namespace nbv6;

void BM_ParseIPv6(benchmark::State& state) {
  for (auto _ : state) {
    auto a = net::IPv6Addr::parse("2606:4700:3037::ac43:a1e5");
    benchmark::DoNotOptimize(a);
  }
}
BENCHMARK(BM_ParseIPv6);

void BM_FormatIPv6(benchmark::State& state) {
  auto a = *net::IPv6Addr::parse("2606:4700::6810:85e5");
  for (auto _ : state) {
    auto s = a.to_string();
    benchmark::DoNotOptimize(s);
  }
}
BENCHMARK(BM_FormatIPv6);

void BM_LpmLookup(benchmark::State& state) {
  stats::Rng rng(1);
  net::LpmTrie4<int> trie;
  for (int i = 0; i < static_cast<int>(state.range(0)); ++i) {
    trie.insert(net::Prefix4(net::IPv4Addr(static_cast<std::uint32_t>(rng())),
                             static_cast<int>(8 + rng.below(17))),
                i);
  }
  for (auto _ : state) {
    auto v = trie.lookup(net::IPv4Addr(static_cast<std::uint32_t>(rng())));
    benchmark::DoNotOptimize(v);
  }
}
BENCHMARK(BM_LpmLookup)->Arg(100)->Arg(1000)->Arg(10000);

void BM_Aes128Block(benchmark::State& state) {
  net::Aes128::Key key{};
  for (size_t i = 0; i < key.size(); ++i) key[i] = static_cast<std::uint8_t>(i);
  net::Aes128 aes(key);
  net::Aes128::Block block{};
  for (auto _ : state) {
    block = aes.encrypt(block);
    benchmark::DoNotOptimize(block);
  }
}
BENCHMARK(BM_Aes128Block);

void BM_CryptoPanV4(benchmark::State& state) {
  net::CryptoPan::Secret secret{};
  for (size_t i = 0; i < secret.size(); ++i)
    secret[i] = static_cast<std::uint8_t>(i * 7);
  net::CryptoPan cp(secret);
  std::uint32_t x = 0xC0000200;
  for (auto _ : state) {
    auto a = cp.anonymize(net::IPv4Addr(x++), static_cast<int>(state.range(0)));
    benchmark::DoNotOptimize(a);
  }
}
BENCHMARK(BM_CryptoPanV4)->Arg(8)->Arg(32);

void BM_DnsResolveChain(benchmark::State& state) {
  dns::ZoneDb zone;
  for (int i = 0; i < 10000; ++i) {
    std::string name = "host" + std::to_string(i) + ".example.com";
    zone.add_cname(name, "edge" + std::to_string(i) + ".cdn.net");
    zone.add_a("edge" + std::to_string(i) + ".cdn.net",
               net::IPv4Addr(static_cast<std::uint32_t>(i + 1)));
  }
  dns::Resolver resolver(zone);
  stats::Rng rng(2);
  for (auto _ : state) {
    auto r = resolver.resolve_a("host" + std::to_string(rng.below(10000)) +
                                ".example.com");
    benchmark::DoNotOptimize(r);
  }
}
BENCHMARK(BM_DnsResolveChain);

void BM_ConntrackChurn(benchmark::State& state) {
  flowmon::ConntrackTable table;
  stats::Rng rng(3);
  std::uint16_t port = 0;
  for (auto _ : state) {
    net::FlowKey k;
    k.src = net::IPv4Addr(192, 168, 1, 10);
    k.dst = net::IPv4Addr(static_cast<std::uint32_t>(rng()));
    k.src_port = ++port;
    k.dst_port = 443;
    table.open(k, 0, flowmon::Scope::external);
    table.account(k, 0, 1000, 50000);
    table.close(k, 10);
  }
}
BENCHMARK(BM_ConntrackChurn);

// Identical churn loop against the flat open-addressing table; compare
// with BM_ConntrackChurn for the fused-hash flat-table speedup.
void BM_FlatConntrackChurn(benchmark::State& state) {
  engine::FlatConntrack table;
  stats::Rng rng(3);
  std::uint16_t port = 0;
  for (auto _ : state) {
    net::FlowKey k;
    k.src = net::IPv4Addr(192, 168, 1, 10);
    k.dst = net::IPv4Addr(static_cast<std::uint32_t>(rng()));
    k.src_port = ++port;
    k.dst_port = 443;
    table.open(k, 0, flowmon::Scope::external);
    table.account(k, 0, 1000, 50000);
    table.close(k, 10);
  }
}
BENCHMARK(BM_FlatConntrackChurn);

// End-to-end fleet ingest: N sampled residences simulated into flat shards
// across 4 lanes and reduced. Arg = residence count (2 simulated days).
void BM_FleetIngest(benchmark::State& state) {
  auto catalog = nbv6::traffic::build_paper_catalog();
  engine::FleetConfig cfg;
  cfg.residences = static_cast<int>(state.range(0));
  cfg.days = 2;
  cfg.seed = 99;
  auto configs = engine::sample_fleet(cfg, catalog);
  engine::FleetEngine fleet(catalog, /*threads=*/4);
  std::uint64_t flows = 0;
  for (auto _ : state) {
    auto result = fleet.run(configs);
    flows += result.totals.flows;
    benchmark::DoNotOptimize(result);
  }
  state.counters["flows"] =
      benchmark::Counter(static_cast<double>(flows), benchmark::Counter::kAvgIterations);
}
BENCHMARK(BM_FleetIngest)->Arg(16)->Arg(64)->Unit(benchmark::kMillisecond);

// Parallel cycle-subseries MSTL (4 lanes) on the same series shape as
// BM_MstlDecompose for a direct speedup read-out.
void BM_MstlDecomposeParallel(benchmark::State& state) {
  stats::Rng rng(4);
  std::vector<double> ys(static_cast<size_t>(state.range(0)));
  for (size_t i = 0; i < ys.size(); ++i)
    ys[i] = 0.5 + 0.2 * std::sin(2 * 3.14159 * static_cast<double>(i) / 24.0) +
            rng.normal(0, 0.05);
  engine::ThreadPool pool(4);
  stats::MstlConfig cfg;
  cfg.periods = {24, 168};
  cfg.pool = &pool;
  stats::StlWorkspace ws;
  stats::MstlResult r;
  for (auto _ : state) {
    stats::mstl_decompose(ys, cfg, ws, r);
    benchmark::DoNotOptimize(r);
  }
}
BENCHMARK(BM_MstlDecomposeParallel)->Arg(24 * 30)->Arg(24 * 90)->Arg(24 * 365)->Unit(benchmark::kMillisecond);

void BM_MstlDecompose(benchmark::State& state) {
  stats::Rng rng(4);
  std::vector<double> ys(static_cast<size_t>(state.range(0)));
  for (size_t i = 0; i < ys.size(); ++i)
    ys[i] = 0.5 + 0.2 * std::sin(2 * 3.14159 * static_cast<double>(i) / 24.0) +
            rng.normal(0, 0.05);
  stats::MstlConfig cfg;
  cfg.periods = {24, 168};
  for (auto _ : state) {
    auto r = stats::mstl_decompose(ys, cfg);
    benchmark::DoNotOptimize(r);
  }
}
BENCHMARK(BM_MstlDecompose)->Arg(24 * 30)->Arg(24 * 90)->Arg(24 * 365)->Unit(benchmark::kMillisecond);

// The raw LOESS kernel on a unit-spaced series (the MSTL inner loop) —
// tracks the multi-accumulator window regression directly, without the
// decomposition machinery around it. Arg = series length.
void BM_LoessUnit(benchmark::State& state) {
  stats::Rng rng(6);
  std::vector<double> ys(static_cast<size_t>(state.range(0)));
  for (size_t i = 0; i < ys.size(); ++i)
    ys[i] = std::sin(static_cast<double>(i) / 40.0) + rng.normal(0, 0.1);
  std::vector<double> out(ys.size());
  stats::LoessConfig cfg;
  cfg.span_fraction = 0.1;
  for (auto _ : state) {
    stats::loess_unit_into(ys, cfg, {}, out);
    benchmark::DoNotOptimize(out.data());
  }
}
BENCHMARK(BM_LoessUnit)->Arg(720)->Arg(8760);

// v6 CryptoPAN over a flow-batch shaped address set: a few /64s repeated
// many times, interleaved — exercises the sorted batch layout plus the
// prefix cache. Counter = anonymized addresses per second.
void BM_CryptoPanV6Batch(benchmark::State& state) {
  net::CryptoPan::Secret secret{};
  for (size_t i = 0; i < secret.size(); ++i)
    secret[i] = static_cast<std::uint8_t>(i * 7 + 3);
  net::CryptoPan cp(secret);
  stats::Rng rng(17);
  std::vector<net::IPv6Addr> in;
  std::vector<std::uint64_t> prefixes;
  for (int p = 0; p < 12; ++p)
    prefixes.push_back(0x20010DB800000000ull | rng());
  for (int i = 0; i < 4096; ++i)
    in.push_back(net::IPv6Addr::from_halves(
        prefixes[rng.below(prefixes.size())], rng()));
  std::vector<net::IPv6Addr> out(in.size());
  for (auto _ : state) {
    cp.anonymize_batch(in, out, 64);
    benchmark::DoNotOptimize(out.data());
  }
  state.counters["addrs_per_sec"] = benchmark::Counter(
      static_cast<double>(in.size()), benchmark::Counter::kIsIterationInvariantRate);
}
BENCHMARK(BM_CryptoPanV6Batch)->Unit(benchmark::kMicrosecond);

// The headline path: a fleet streamed tick-by-tick through the firehose
// into a counting sink, 4 lanes. Counter = flows per second (all-core).
void BM_FirehoseStream(benchmark::State& state) {
  engine::FleetConfig cfg;
  cfg.residences = static_cast<int>(state.range(0));
  cfg.days = 2;
  cfg.seed = 21;
  cfg.arrival->mode = traffic::ArrivalMode::poisson;
  cfg.arrival->ticks_per_hour = 12;
  auto catalog = traffic::build_paper_catalog();
  engine::Firehose hose(catalog, 4);
  std::uint64_t flows = 0;
  for (auto _ : state) {
    auto result = hose.run(cfg, [&](const engine::FlowEvent& ev) {
      benchmark::DoNotOptimize(ev.bytes_out);
    });
    flows += result.flows;
    benchmark::DoNotOptimize(result.flows);
  }
  state.counters["flows_per_sec"] = benchmark::Counter(
      static_cast<double>(flows), benchmark::Counter::kIsRate);
}
BENCHMARK(BM_FirehoseStream)->Arg(16)->Arg(64)->Unit(benchmark::kMillisecond);

void BM_WilcoxonExact(benchmark::State& state) {
  std::vector<double> d;
  for (int i = 1; i <= 25; ++i) d.push_back(i % 3 == 0 ? -i : i);
  for (auto _ : state) {
    auto r = stats::wilcoxon_signed_rank(d);
    benchmark::DoNotOptimize(r);
  }
}
BENCHMARK(BM_WilcoxonExact);

void BM_RankSumNormalApprox(benchmark::State& state) {
  // Fleet-panel shape: two residence strata of `Arg` homes each, metric
  // values in [0, 1], tested through the tie-corrected normal path.
  const auto n = static_cast<size_t>(state.range(0));
  stats::Rng rng(3);
  std::vector<double> xs, ys;
  for (size_t i = 0; i < n; ++i) {
    xs.push_back(rng.uniform(0.0, 1.0));
    ys.push_back(rng.uniform(0.1, 1.0));
  }
  for (auto _ : state) {
    auto r = stats::wilcoxon_rank_sum(xs, ys);
    benchmark::DoNotOptimize(r);
  }
}
BENCHMARK(BM_RankSumNormalApprox)->Arg(64)->Arg(1024);

void BM_StreamingCdfAdd(benchmark::State& state) {
  stats::Rng rng(9);
  std::vector<double> xs;
  for (int i = 0; i < 4096; ++i) xs.push_back(rng.uniform(0.0, 1.0));
  for (auto _ : state) {
    stats::StreamingCdf acc(0.0, 1.0, 128);
    acc.add(xs);
    benchmark::DoNotOptimize(acc.quantile(0.5));
  }
  state.SetItemsProcessed(state.iterations() * 4096);
}
BENCHMARK(BM_StreamingCdfAdd);

}  // namespace

BENCHMARK_MAIN();
