// Figure 8: CDFs of span and median contribution for IPv4-only eTLD+1
// domains used by IPv6-partial websites.
#include "web/metrics.h"

#include "bench_common.h"

using namespace nbv6;

int main() {
  bench::section("Figure 8: span and median contribution of IPv4-only domains");
  cloud::ProviderCatalog providers;
  auto universe = bench::make_universe(providers);
  auto survey = core::run_server_survey(universe, web::Epoch::jul2025, 42);
  web::SpanAnalysis span(universe, survey.crawls, survey.classifications);

  std::vector<double> spans, contribs;
  for (const auto& d : span.impacts()) {
    spans.push_back(d.span);
    contribs.push_back(d.median_contribution);
  }
  std::printf("IPv4-only dependency domains: %zu\n", spans.size());
  bench::print_cdf(spans, "span (dependent partial sites per domain)", 10);
  bench::print_cdf(contribs, "median contribution", 10);
  std::printf("\nquartiles: span p75=%.0f p95=%.0f max=%.0f | contribution "
              "p25=%.2f p50=%.2f p75=%.2f p95=%.2f\n",
              stats::quantile(spans, .75), stats::quantile(spans, .95),
              stats::max(spans), stats::quantile(contribs, .25),
              stats::quantile(contribs, .5), stats::quantile(contribs, .75),
              stats::quantile(contribs, .95));

  std::printf("\nTop-10 spans:\n");
  for (size_t i = 0; i < std::min<size_t>(10, span.impacts().size()); ++i) {
    const auto& d = span.impacts()[i];
    std::printf("  %-28s span=%5d median_contribution=%.2f\n",
                d.etld1.c_str(), d.span, d.median_contribution);
  }

  std::printf(
      "\nPaper reference: span p75=2, p95=20, a handful above 1000; "
      "contribution p75=0.13,\np95=0.72 — most IPv4-only domains touch one "
      "or two sites, a few are everywhere.\n");
  return 0;
}
