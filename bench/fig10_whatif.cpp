// Figure 10: what-if adoption simulation — IPv4-only dependency domains
// enable IPv6 one at a time in descending span order; how many IPv6-partial
// sites become IPv6-full at each step.
#include "web/metrics.h"

#include "bench_common.h"

using namespace nbv6;

int main() {
  bench::section("Figure 10: cumulative sites fixed as top-span domains adopt IPv6");
  cloud::ProviderCatalog providers;
  auto universe = bench::make_universe(providers);
  auto survey = core::run_server_survey(universe, web::Epoch::jul2025, 42);
  web::SpanAnalysis span(universe, survey.crawls, survey.classifications);

  auto curve = span.whatif_adoption_curve();
  const int partial = static_cast<int>(span.partial_sites().size());
  std::printf("partial sites: %d, IPv4-only dependency domains: %zu\n",
              partial, curve.size());

  for (size_t k : {size_t{10}, size_t{50}, size_t{100}, size_t{500},
                   size_t{1000}, size_t{5000}, size_t{10000}}) {
    if (k > curve.size()) break;
    std::printf("  after top %6zu domains: %7d sites full (%.1f%%)\n", k,
                curve[k - 1], 100.0 * curve[k - 1] / partial);
  }
  std::printf("  after all  %6zu domains: %7d sites full (100%%)\n",
              curve.size(), curve.back());

  // The quartile crossings the paper annotates.
  for (double q : {0.25, 0.5, 0.75}) {
    auto target = static_cast<int>(q * partial);
    for (size_t k = 0; k < curve.size(); ++k) {
      if (curve[k] >= target) {
        std::printf("  %.0f%% of partial sites fixed after %zu domains\n",
                    q * 100, k + 1);
        break;
      }
    }
  }

  std::printf(
      "\nPaper reference: top 500 domains (3.3%%) fix >25%% of partial "
      "sites, but full\ncoverage requires over 15,000 domains — a long "
      "tail.\n");
  return 0;
}
