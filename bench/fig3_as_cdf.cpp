// Figure 3: cumulative distribution of per-AS IPv6 byte fractions for ASes
// observed at three or more residences, per residence.
#include "bench_common.h"

using namespace nbv6;

int main() {
  bench::section("Figure 3: per-AS IPv6 byte fraction CDFs by residence");
  auto catalog = traffic::build_paper_catalog();
  auto residences = bench::simulate_residences(catalog);

  // Per-residence AS usage at the paper's >= 0.01% traffic threshold.
  std::vector<std::vector<core::AsUsage>> per_res;
  for (const auto& r : residences)
    per_res.push_back(core::as_usage(*r.monitor, catalog.as_map(), 1e-4));

  // ASes present at >= 3 residences (the paper's 35).
  auto shared = core::ases_at_min_residences(per_res, 3);
  std::printf("ASes at >= 3 residences: %zu\n", shared.size());

  for (size_t i = 0; i < residences.size(); ++i) {
    std::vector<double> fracs;
    for (const auto& as : per_res[i]) {
      // Restrict to the shared-AS population, as the figure does.
      for (const auto& s : shared)
        if (s.asn == as.asn) fracs.push_back(as.v6_fraction());
    }
    std::string label = "Residence " + residences[i].config.name +
                        " per-AS IPv6 byte fraction";
    bench::print_cdf(fracs, label.c_str(), 10);
  }

  std::printf(
      "\nShape check vs paper: every residence has IPv4-only ASes (>= a "
      "quarter at 0.0);\nResidence C's curve saturates early (its maximum "
      "per-AS fraction is depressed by\nbroken device IPv6).\n");
  return 0;
}
