// Figure 6: stacked IPv6-readiness (IPv4-only / partial / full) for the top
// N sites, N in {100, 1k, 10k, 100k}.
#include "bench_common.h"

using namespace nbv6;

int main() {
  bench::section("Figure 6: IPv6 readiness by top-N rank prefix");
  cloud::ProviderCatalog providers;
  auto universe = bench::make_universe(providers);
  auto survey = core::run_server_survey(universe, web::Epoch::jul2025, 42);

  int n_sites = static_cast<int>(universe.sites().size());
  std::vector<int> ns;
  for (int n : {100, 1000, 10000, 100000})
    if (n <= n_sites) ns.push_back(n);
  if (ns.empty() || ns.back() != n_sites) ns.push_back(n_sites);

  std::printf("%8s %12s %12s %12s\n", "Top N", "IPv4-only%", "partial%",
              "full%");
  for (const auto& row : core::topn_breakdown(universe, survey, ns)) {
    std::printf("%8d %12.1f %12.1f %12.1f\n", row.n, row.pct_v4only,
                row.pct_partial, row.pct_full);
  }

  std::printf(
      "\nPaper reference: top-100 sites are 30.1%% IPv6-full, more than "
      "double the 12.6%%\nacross the top-100k; the long tail lags.\n");
  return 0;
}
