// Firehose throughput: the streaming engine's headline number.
//
// Streams a synthetic fleet through engine::Firehose with a
// byte-counting sink and reports flows/sec and — the figure of merit —
// flows/sec/core. Knobs are shared-grammar CLI flags (see --help) so CI
// smoke runs and local deep runs share one binary:
//
//   ./build/firehose_throughput [--residences=64 --days=14 --threads=0
//                                --tph=12 --mode=poisson --seed=1]
//
// The old NBV6_FIREHOSE_* env knobs remain deprecated fallbacks.
//
// Output is one human line plus one machine-greppable `RESULT` line of
// key=value pairs (the CI artifact).
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <string>

#include "bench_cli.h"
#include "engine/firehose.h"
#include "engine/fleet.h"
#include "traffic/arrival.h"
#include "traffic/service_catalog.h"

int main(int argc, char** argv) {
  using namespace nbv6;

  engine::FleetConfig cfg;
  cfg.residences = 64;
  cfg.days = 14;
  cfg.seed = 1;
  cfg.arrival->ticks_per_hour = 12;
  std::string mode = "poisson";
  int threads = 0;

  bench::Cli cli("firehose_throughput",
                 "Streaming flow-firehose throughput measurement");
  cli.flag_int("residences", &cfg.residences.mut(), "fleet size",
               "NBV6_FIREHOSE_RESIDENCES");
  cli.flag_int("days", &cfg.days.mut(), "simulated horizon in days",
               "NBV6_FIREHOSE_DAYS");
  cli.flag_int("threads", &threads, "worker lanes, 0 = hw concurrency",
               "NBV6_FIREHOSE_THREADS");
  cli.flag_int("tph", &cfg.arrival->ticks_per_hour, "arrival ticks per hour",
               "NBV6_FIREHOSE_TPH");
  cli.flag_string("mode", &mode, "arrival mode: batch|poisson|uniform",
                  "NBV6_FIREHOSE_MODE");
  cli.flag_u64("seed", &cfg.seed.mut(), "scenario master seed",
               "NBV6_FIREHOSE_SEED");
  if (!cli.parse(argc, argv)) return cli.exit_code();
  if (!traffic::parse_arrival_mode(mode, cfg.arrival->mode)) {
    std::fprintf(stderr, "unknown --mode '%s'\n", mode.c_str());
    return 2;
  }

  auto catalog = traffic::build_paper_catalog();
  engine::Firehose hose(catalog, threads);

  std::uint64_t bytes = 0;
  std::uint64_t external = 0;
  const auto t0 = std::chrono::steady_clock::now();
  auto result = hose.run(cfg, [&](const engine::FlowEvent& ev) {
    bytes += ev.bytes_out + ev.bytes_in;
    external += ev.scope == flowmon::Scope::external ? 1u : 0u;
  });
  const auto t1 = std::chrono::steady_clock::now();

  const double secs = std::chrono::duration<double>(t1 - t0).count();
  const double fps = secs > 0.0 ? static_cast<double>(result.flows) / secs : 0.0;
  const double fps_core = fps / static_cast<double>(result.lanes);

  std::printf(
      "firehose: %d residences x %d days, mode=%s tph=%d, %d lane(s)\n"
      "  %llu flows (%llu external) / %llu sessions in %.3f s\n"
      "  %.0f flows/sec, %.0f flows/sec/core\n",
      cfg.residences.get(), cfg.days.get(), mode.c_str(),
      cfg.arrival->ticks_per_hour,
      result.lanes, static_cast<unsigned long long>(result.flows),
      static_cast<unsigned long long>(external),
      static_cast<unsigned long long>(result.totals.sessions), secs, fps,
      fps_core);
  std::printf(
      "RESULT residences=%d days=%d mode=%s tph=%d lanes=%d flows=%llu "
      "bytes=%llu seconds=%.6f flows_per_sec=%.1f flows_per_sec_per_core=%.1f\n",
      cfg.residences.get(), cfg.days.get(), mode.c_str(),
      cfg.arrival->ticks_per_hour,
      result.lanes, static_cast<unsigned long long>(result.flows),
      static_cast<unsigned long long>(bytes), secs, fps, fps_core);
  return result.flows > 0 ? 0 : 1;
}
