// Firehose throughput: the PR's headline number.
//
// Streams a synthetic fleet through engine::Firehose with a
// byte-counting sink and reports flows/sec and — the figure of merit —
// flows/sec/core. Knobs come from the environment so CI smoke runs and
// local deep runs share one binary:
//
//   NBV6_FIREHOSE_RESIDENCES  fleet size            (default 64)
//   NBV6_FIREHOSE_DAYS        simulated horizon     (default 14)
//   NBV6_FIREHOSE_THREADS     worker lanes, 0=auto  (default 0)
//   NBV6_FIREHOSE_TPH         ticks per hour        (default 12)
//   NBV6_FIREHOSE_MODE        batch|poisson|uniform (default poisson)
//   NBV6_FIREHOSE_SEED       scenario seed          (default 1)
//
// Output is one human line plus one machine-greppable `RESULT` line of
// key=value pairs (the CI artifact).
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <string>

#include "engine/firehose.h"
#include "engine/fleet.h"
#include "traffic/arrival.h"
#include "traffic/service_catalog.h"

namespace {

int env_int(const char* name, int fallback) {
  const char* v = std::getenv(name);
  if (v == nullptr || *v == '\0') return fallback;
  return std::atoi(v);
}

const char* env_str(const char* name, const char* fallback) {
  const char* v = std::getenv(name);
  return (v == nullptr || *v == '\0') ? fallback : v;
}

}  // namespace

int main() {
  using namespace nbv6;

  engine::FleetConfig cfg;
  cfg.residences = env_int("NBV6_FIREHOSE_RESIDENCES", 64);
  cfg.days = env_int("NBV6_FIREHOSE_DAYS", 14);
  cfg.seed = static_cast<std::uint64_t>(env_int("NBV6_FIREHOSE_SEED", 1));
  cfg.arrival.ticks_per_hour = env_int("NBV6_FIREHOSE_TPH", 12);
  const char* mode = env_str("NBV6_FIREHOSE_MODE", "poisson");
  if (!traffic::parse_arrival_mode(mode, cfg.arrival.mode)) {
    std::fprintf(stderr, "unknown NBV6_FIREHOSE_MODE '%s'\n", mode);
    return 2;
  }

  const int threads = env_int("NBV6_FIREHOSE_THREADS", 0);
  auto catalog = traffic::build_paper_catalog();
  engine::Firehose hose(catalog, threads);

  std::uint64_t bytes = 0;
  std::uint64_t external = 0;
  const auto t0 = std::chrono::steady_clock::now();
  auto result = hose.run(cfg, [&](const engine::FlowEvent& ev) {
    bytes += ev.bytes_out + ev.bytes_in;
    external += ev.scope == flowmon::Scope::external ? 1u : 0u;
  });
  const auto t1 = std::chrono::steady_clock::now();

  const double secs = std::chrono::duration<double>(t1 - t0).count();
  const double fps = secs > 0.0 ? static_cast<double>(result.flows) / secs : 0.0;
  const double fps_core = fps / static_cast<double>(result.lanes);

  std::printf(
      "firehose: %d residences x %d days, mode=%s tph=%d, %d lane(s)\n"
      "  %llu flows (%llu external) / %llu sessions in %.3f s\n"
      "  %.0f flows/sec, %.0f flows/sec/core\n",
      cfg.residences, cfg.days, mode, cfg.arrival.ticks_per_hour, result.lanes,
      static_cast<unsigned long long>(result.flows),
      static_cast<unsigned long long>(external),
      static_cast<unsigned long long>(result.totals.sessions), secs, fps,
      fps_core);
  std::printf(
      "RESULT residences=%d days=%d mode=%s tph=%d lanes=%d flows=%llu "
      "bytes=%llu seconds=%.6f flows_per_sec=%.1f flows_per_sec_per_core=%.1f\n",
      cfg.residences, cfg.days, mode, cfg.arrival.ticks_per_hour, result.lanes,
      static_cast<unsigned long long>(result.flows),
      static_cast<unsigned long long>(bytes), secs, fps, fps_core);
  return result.flows > 0 ? 0 : 1;
}
