// Figure 1 (and Figure 16): CDFs of per-day IPv6 byte and flow fractions at
// all five residences, external (solid in the paper) and internal (dashed).
#include "bench_common.h"

using namespace nbv6;

int main() {
  bench::section("Figure 1 / Figure 16: daily IPv6 fraction CDFs");
  auto catalog = traffic::build_paper_catalog();
  auto residences = bench::simulate_residences(catalog);

  for (const auto& r : residences) {
    for (auto scope : {flowmon::Scope::external, flowmon::Scope::internal}) {
      for (bool by_bytes : {true, false}) {
        auto fracs = r.monitor->daily_v6_fractions(scope, by_bytes);
        if (fracs.empty()) continue;
        std::string label = "Residence " + r.config.name + " " +
                            std::string(flowmon::to_string(scope)) +
                            (by_bytes ? " bytes" : " flows");
        bench::print_cdf(fracs, label.c_str(), 10);
      }
    }
  }

  std::printf(
      "\nShape check vs paper: byte-fraction CDFs rise near-linearly with "
      "heavy tails;\nflow-fraction CDFs rise sharply over a narrow range "
      "(flow mixes are stable day to day).\n");
  return 0;
}
