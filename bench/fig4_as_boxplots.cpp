// Figure 4: distribution (box plots) of IPv6 byte fractions for ASes seen
// at three or more residences, grouped by functional category.
// Figure 17: the domain-level (reverse DNS) counterpart.
#include <algorithm>
#include <map>

#include "bench_common.h"

using namespace nbv6;

int main() {
  bench::section("Figure 4: per-AS IPv6 fraction box plots by category");
  auto catalog = traffic::build_paper_catalog();
  auto residences = bench::simulate_residences(catalog);

  std::vector<std::vector<core::AsUsage>> per_res;
  for (const auto& r : residences)
    per_res.push_back(core::as_usage(*r.monitor, catalog.as_map(), 1e-4));
  auto shared = core::ases_at_min_residences(per_res, 3);

  // Group by catalog category; sort by median within each group.
  std::map<traffic::ServiceCategory, std::vector<core::CrossResidenceUsage>>
      groups;
  for (auto& s : shared) {
    auto idx = catalog.find_by_asn(s.asn);
    if (!idx) continue;
    groups[catalog.at(*idx).category].push_back(s);
  }
  for (auto& [cat, members] : groups) {
    std::printf("\n-- %s --\n", std::string(to_string(cat)).c_str());
    std::sort(members.begin(), members.end(), [](const auto& a, const auto& b) {
      return stats::median(a.fractions) > stats::median(b.fractions);
    });
    for (const auto& m : members) {
      auto b = stats::boxplot(m.fractions);
      bench::print_boxplot(
          b, m.key + " (" + std::to_string(m.asn) + ") n=" +
                 std::to_string(m.fractions.size()));
    }
  }

  bench::section("Figure 17: per-domain (reverse DNS) IPv6 fraction box plots");
  std::vector<std::vector<core::DomainUsage>> dom_per_res;
  for (const auto& r : residences)
    dom_per_res.push_back(core::domain_usage(*r.monitor, catalog, 0));
  // Paper threshold: >= 3 residences and >= 100 MB total.
  auto domains = core::domains_at_min_residences(dom_per_res, 3, 100'000'000);
  std::sort(domains.begin(), domains.end(), [](const auto& a, const auto& b) {
    return stats::median(a.fractions) < stats::median(b.fractions);
  });
  for (const auto& d : domains)
    bench::print_boxplot(stats::boxplot(d.fractions), d.key);

  std::printf(
      "\nShape check vs paper: ISPs uniformly low (medians <= 20%%); "
      "Web/Social >90%%\nexcept ByteDance; Zoom, Twitch (justin.tv), GitHub, "
      "USC at zero.\n");
  return 0;
}
