// Ablation experiments for the design choices DESIGN.md calls out:
//   1. Crawl depth: main page only vs +5 same-site link clicks (§4.2 notes
//      main-page-only inflates IPv6-full from 12.5% to 14.1%).
//   2. Byte- vs flow-based client fractions (§3.2: Happy Eyeballs duplicate
//      flows make flow fractions look more stable/balanced than bytes).
//   3. Happy Eyeballs duplicate-flow probability: its effect on flow-level
//      IPv6 fractions at a fixed byte-level ground truth.
//   4. AS-level vs domain-level service attribution (§3.4: reverse DNS of
//      cloud-hosted services collapses to the cloud's domain).
#include <map>

#include "bench_common.h"

using namespace nbv6;

namespace {

void ablation_crawl_depth() {
  bench::section("Ablation 1: crawl depth (main page only vs +5 link clicks)");
  cloud::ProviderCatalog providers;
  web::UniverseConfig cfg;
  cfg.site_count = std::min(30000, bench::env_int("NBV6_SITES", 30000));
  web::Universe universe(cfg, providers);
  auto ab = core::link_click_ablation(universe, web::Epoch::jul2025, 42);
  std::printf("  IPv6-full with 5 link clicks: %.1f%%\n",
              ab.pct_full_with_clicks);
  std::printf("  IPv6-full main page only:     %.1f%%\n",
              ab.pct_full_main_only);
  std::printf("  inflation from shallow crawling: %.1f points (paper: 1.6)\n",
              ab.pct_full_main_only - ab.pct_full_with_clicks);
}

void ablation_bytes_vs_flows() {
  bench::section("Ablation 2: byte- vs flow-based IPv6 fractions");
  auto catalog = traffic::build_paper_catalog();
  auto residences = bench::simulate_residences(catalog);
  for (const auto& r : residences) {
    auto bytes = r.monitor->daily_v6_fractions(flowmon::Scope::external, true);
    auto flows = r.monitor->daily_v6_fractions(flowmon::Scope::external, false);
    std::printf(
        "  Residence %s: daily byte-fraction sd=%.3f, flow-fraction sd=%.3f "
        "(flows steadier: %s)\n",
        r.config.name.c_str(), stats::stddev(bytes), stats::stddev(flows),
        stats::stddev(flows) < stats::stddev(bytes) ? "yes" : "no");
  }
}

void ablation_dup_flows() {
  bench::section("Ablation 3: Happy Eyeballs duplicate-flow probability");
  stats::Rng rng(7);
  for (double dup : {0.0, 0.35, 0.7}) {
    traffic::HappyEyeballsConfig cfg;
    cfg.dup_flow_prob = dup;
    int v6_flows = 0, total_flows = 0;
    const int sessions = 20000;
    for (int i = 0; i < sessions; ++i) {
      auto d = traffic::happy_eyeballs_race(true, true, true, 18, 18, rng, cfg);
      ++total_flows;
      if (d.used == net::Family::v6) ++v6_flows;
      if (d.opened_both) ++total_flows;  // the loser's near-empty flow
    }
    std::printf(
        "  dup_prob=%.2f: flow-level IPv6 fraction %.3f (byte-level truth "
        "~1.0 for dual-stack)\n",
        dup, static_cast<double>(v6_flows) / total_flows);
  }
}

void ablation_as_vs_domain() {
  bench::section("Ablation 4: AS-level vs domain-level attribution");
  auto catalog = traffic::build_paper_catalog();
  auto residences = bench::simulate_residences(catalog);
  const auto& r = residences[0];
  auto by_as = core::as_usage(*r.monitor, catalog.as_map(), 0.0);
  auto by_domain = core::domain_usage(*r.monitor, catalog, 0);
  std::printf("  Residence A: %zu ASes vs %zu reverse-DNS domains\n",
              by_as.size(), by_domain.size());
  // Domains that several ASes collapse into (the cloud-canonical-name
  // limitation): amazonaws.com spans AMAZON-02 and AMAZON-AES, etc.
  std::map<std::string, int> domain_as_count;
  for (const auto& a : by_as) {
    auto idx = catalog.find_by_asn(a.asn);
    if (idx) ++domain_as_count[catalog.at(*idx).rdns_domain];
  }
  for (const auto& [domain, n] : domain_as_count)
    if (n > 1)
      std::printf("  domain %-28s aggregates %d distinct ASes\n",
                  domain.c_str(), n);
}

void ablation_version_subdomains() {
  bench::section(
      "Ablation 5: version-specific subdomain misclassification (Sec 4.4)");
  cloud::ProviderCatalog providers;
  web::UniverseConfig cfg;
  cfg.site_count = std::min(30000, bench::env_int("NBV6_SITES", 30000));
  web::Universe universe(cfg, providers);
  auto survey = core::run_server_survey(universe, web::Epoch::jul2025, 42);
  auto est = web::estimate_version_subdomain_misclassification(
      universe, survey.crawls, survey.classifications);
  std::printf(
      "  suspect sites (all IPv4-only FQDNs carry v4/ipv4/px4 markers): %d "
      "of %d partial (%.2f%%)\n",
      est.suspect_sites, est.partial_sites, 100.0 * est.fraction());
  std::printf("  paper reference: 106 of ~24k partial sites (0.4%%)\n");
}

}  // namespace

int main() {
  ablation_crawl_depth();
  ablation_bytes_vs_flows();
  ablation_dup_flows();
  ablation_as_vs_domain();
  ablation_version_subdomains();
  return 0;
}
