// Table 1: per-residence IPv6 traffic volume, flow count, and fractions,
// external and internal, with daily mean (s.d.).
#include "bench_common.h"

using namespace nbv6;

namespace {

void print_scope_row(const char* scope, const core::ScopeReport& r) {
  std::printf(
      "  %-8s | vol GB: total=%9.2f v4=%9.2f v6=%9.2f | frac(bytes): "
      "overall=%.3f daily=%.3f (%.3f)\n",
      scope, r.total_gb, r.v4_gb, r.v6_gb, r.overall_byte_fraction,
      r.daily_byte_fraction.mean, r.daily_byte_fraction.stddev);
  std::printf(
      "  %-8s | flows M: total=%9.3f v4=%9.3f v6=%9.3f | frac(flows): "
      "overall=%.3f daily=%.3f (%.3f)\n",
      "", r.total_flows_m, r.v4_flows_m, r.v6_flows_m,
      r.overall_flow_fraction, r.daily_flow_fraction.mean,
      r.daily_flow_fraction.stddev);
}

}  // namespace

int main() {
  bench::section("Table 1: per-residence IPv6 traffic (external & internal)");
  auto catalog = traffic::build_paper_catalog();
  auto residences = bench::simulate_residences(catalog);

  for (const auto& r : residences) {
    auto report = core::analyze_residence(r.config.name, *r.monitor);
    std::printf("Residence %s\n", report.name.c_str());
    print_scope_row("External", report.external);
    print_scope_row("Internal", report.internal);
  }

  std::printf(
      "\nPaper reference (external, fraction IPv6 bytes overall): "
      "A=0.679 B=0.638 C=0.122 D=0.495 E=0.066\n");
  std::printf(
      "Paper reference (external, fraction IPv6 flows overall): "
      "A=0.503 B=0.633 C=0.089 D=0.824 E=0.110\n");
  return 0;
}
