// Figure 18: heatmap of the top-20 IPv4-only resource domains by span,
// broken down by the resource types they serve to IPv6-partial sites.
#include "web/metrics.h"

#include "bench_common.h"

using namespace nbv6;

int main() {
  bench::section("Figure 18: top-20 IPv4-only domains x resource type");
  cloud::ProviderCatalog providers;
  auto universe = bench::make_universe(providers);
  auto survey = core::run_server_survey(universe, web::Epoch::jul2025, 42);
  web::SpanAnalysis span(universe, survey.crawls, survey.classifications);

  std::printf("%-24s %6s", "domain", "(any)");
  for (int t = 0; t < web::kResourceTypeCount; ++t)
    std::printf(" %14s",
                std::string(to_string(static_cast<web::ResourceType>(t))).c_str());
  std::printf("\n");

  size_t rows = std::min<size_t>(20, span.impacts().size());
  for (size_t i = 0; i < rows; ++i) {
    const auto& d = span.impacts()[i];
    std::printf("%-24s %6d", d.etld1.c_str(), d.span);
    for (int t = 0; t < web::kResourceTypeCount; ++t)
      std::printf(" %14d", d.type_site_counts[static_cast<size_t>(t)]);
    std::printf("\n");
  }

  std::printf(
      "\nPaper reference: doubleclick.net tops the list (span 6666); images "
      "dominate,\nfollowed by sub_frame, xmlhttprequest, and script — "
      "IPv6-only users see broken\nimages and impaired functionality.\n");
  return 0;
}
