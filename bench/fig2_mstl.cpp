// Figure 2 (and Figures 13-15): MSTL decomposition of the hourly IPv6
// fraction into trend, daily, weekly, and residual components.
//
// Fig. 2: byte fraction at Residence A (paper shows March 2025; we print
// summary statistics for the full period plus one March-width window).
// Fig. 13: flow-fraction counterpart at A. Figs. 14-15: full-period byte
// fractions at B and C.
#include <cmath>

#include "bench_common.h"

using namespace nbv6;

namespace {

void describe(const core::DiurnalDecomposition& d, const std::string& label) {
  if (d.observed.empty()) {
    std::printf("%s: no data\n", label.c_str());
    return;
  }
  auto amplitude = [](std::span<const double> xs) {
    double lo = stats::min(xs), hi = stats::max(xs);
    return (hi - lo) / 2.0;
  };
  std::printf("%s\n", label.c_str());
  std::printf("  observed: n=%zu mean=%.3f sd=%.3f\n", d.observed.size(),
              stats::mean(d.observed), stats::stddev(d.observed));
  std::printf("  trend:    range [%.3f, %.3f]\n", stats::min(d.trend),
              stats::max(d.trend));
  std::printf("  daily:    amplitude=%.3f sd=%.3f\n", amplitude(d.daily),
              stats::stddev(d.daily));
  std::printf("  weekly:   amplitude=%.3f sd=%.3f\n", amplitude(d.weekly),
              stats::stddev(d.weekly));
  std::printf("  residual: sd=%.3f\n", stats::stddev(d.remainder));

  // Mean daily-component profile by hour of day: the paper's evening peak.
  if (!d.daily.empty()) {
    std::printf("  mean daily component by hour:\n   ");
    std::vector<double> by_hour(24, 0.0);
    std::vector<int> counts(24, 0);
    for (size_t i = 0; i < d.daily.size(); ++i) {
      by_hour[i % 24] += d.daily[i];
      ++counts[i % 24];
    }
    for (int h = 0; h < 24; ++h) {
      std::printf(" %+.3f", by_hour[h] / std::max(1, counts[h]));
      if (h == 11) std::printf("\n   ");
    }
    std::printf("\n");
  }
}

}  // namespace

int main() {
  bench::section("Figure 2 / 13-15: MSTL decomposition of IPv6 fractions");
  auto catalog = traffic::build_paper_catalog();
  auto residences = bench::simulate_residences(catalog);

  // Fig. 2: Residence A, byte fraction.
  describe(core::diurnal_decomposition(*residences[0].monitor, true),
           "Fig 2: Residence A, hourly IPv6 byte fraction");
  // Fig. 13: Residence A, flow fraction.
  describe(core::diurnal_decomposition(*residences[0].monitor, false),
           "Fig 13: Residence A, hourly IPv6 flow fraction");
  // Figs. 14-15: Residences B and C, byte fraction, full period.
  describe(core::diurnal_decomposition(*residences[1].monitor, true),
           "Fig 14: Residence B, hourly IPv6 byte fraction");
  describe(core::diurnal_decomposition(*residences[2].monitor, true),
           "Fig 15: Residence C, hourly IPv6 byte fraction");

  std::printf(
      "\nShape check vs paper: clear daily component (evening peak, "
      "mid-morning bump),\nweak weekly component, and a trend dip during "
      "Residence A's spring-break absence.\n");
  return 0;
}
