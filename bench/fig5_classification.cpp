// Figure 5: classification of the top-100k sites into loading-failure /
// IPv4-only / IPv6-partial / IPv6-full, across the three measurement
// epochs (Oct 2024, Apr 2025, Jul 2025), including the Sankey-diagram
// branch counts and the browser-used-IPv4 split.
#include "bench_common.h"

using namespace nbv6;

namespace {

void print_epoch(const web::ClassificationCounts& c, web::Epoch e) {
  std::printf("\n-- %s --\n", std::string(to_string(e)).c_str());
  std::printf("  Total sites                 %7d\n", c.total);
  std::printf("  Loading-Failure (NXDOMAIN)  %7d\n", c.nxdomain);
  std::printf("  Loading-Failure (Others)    %7d\n", c.other_failure);
  std::printf("  Connection Success          %7d (100%%)\n",
              c.connection_success);
  std::printf("  Unknown Primary Domain      %7d (%.1f%%)\n",
              c.unknown_primary, c.pct_of_success(c.unknown_primary));
  std::printf("  IPv4-only (A-only domain)   %7d (%.1f%%)\n", c.ipv4_only,
              c.pct_of_success(c.ipv4_only));
  std::printf("  AAAA-enabled Domain         %7d (%.1f%%)\n", c.aaaa_enabled,
              c.pct_of_success(c.aaaa_enabled));
  std::printf("  IPv6-partial                %7d (%.1f%%)\n", c.ipv6_partial,
              c.pct_of_success(c.ipv6_partial));
  std::printf("  IPv6-full                   %7d (%.1f%%)\n", c.ipv6_full,
              c.pct_of_success(c.ipv6_full));
  std::printf("  Browser Used IPv4           %7d (%.1f%%)\n",
              c.full_browser_used_v4, c.pct_of_success(c.full_browser_used_v4));
  std::printf("  Browser Used IPv6 Only      %7d (%.1f%%)\n",
              c.full_browser_used_v6_only,
              c.pct_of_success(c.full_browser_used_v6_only));
}

}  // namespace

int main() {
  bench::section("Figure 5: top-list IPv6 readiness across three epochs");
  cloud::ProviderCatalog providers;
  auto universe = bench::make_universe(providers);

  for (auto e : {web::Epoch::oct2024, web::Epoch::apr2025, web::Epoch::jul2025}) {
    auto survey = core::run_server_survey(universe, e, 42);
    print_epoch(survey.counts, e);
  }

  std::printf(
      "\nPaper reference (Jul 2025, %% of connection successes): IPv4-only "
      "57.6%%,\nAAAA-enabled 42.4%%, IPv6-partial 29.8%%, IPv6-full 12.6%%, "
      "browser-used-IPv4 1.5%%\n(of successes; ~11.6%% of full sites). "
      "Adoption drifts up ~0.6%% over the epochs.\n");
  return 0;
}
