// Fleet figure: population CDFs and five-number summaries of per-residence
// metrics — Figures 1/3/4 scaled from the paper's five instrumented homes
// to a simulated fleet. Writes two CSVs (CDF curves, box/summary rows) for
// plotting or CI artifact upload, and prints the summaries to stdout.
//
//   ./build/fleet_fig_cdf [--residences=N --days=N --seed=S --threads=T]
//                         [cdf-out.csv] [summary-out.csv]
//
// (See --help; the old NBV6_FLEET_* env knobs remain deprecated fallbacks.)
#include <cstdio>
#include <string>

#include "core/fleet_analysis.h"
#include "engine/fleet.h"
#include "traffic/service_catalog.h"

#include "bench_common.h"

using namespace nbv6;

int main(int argc, char** argv) {
  auto cfg = bench::default_bench_fleet();
  std::string cdf_path = "fleet_cdf.csv";
  std::string summary_path = "fleet_summary.csv";
  bench::Cli cli("fleet_fig_cdf",
                 "Population CDFs and summaries of per-residence metrics");
  bench::register_fleet_flags(cli, cfg);
  cli.positional("cdf-out.csv", &cdf_path, "CDF curves output");
  cli.positional("summary-out.csv", &summary_path, "box/summary output");
  if (!cli.parse(argc, argv)) return cli.exit_code();

  bench::section("Fleet figure: population CDFs of per-residence metrics");
  auto catalog = traffic::build_paper_catalog();
  engine::FleetEngine fleet(catalog, cfg.threads);
  std::printf("fleet: %d residences x %d days on %d lane(s)\n",
              cfg.residences.get(), cfg.days.get(), fleet.lanes());
  auto result = fleet.run(cfg);

  auto matrix = core::extract_metrics(result, core::default_fleet_metrics(),
                                      fleet.pool());
  auto dists = core::population_distributions(matrix);

  for (const auto& d : dists) {
    bench::print_boxplot(d.box, core::to_string(d.metric));
  }

  std::FILE* cdf_out = std::fopen(cdf_path.c_str(), "w");
  std::FILE* summary_out = std::fopen(summary_path.c_str(), "w");
  if (cdf_out == nullptr || summary_out == nullptr) {
    std::fprintf(stderr, "cannot open %s / %s for writing\n", cdf_path.c_str(),
                 summary_path.c_str());
    return 1;
  }
  core::write_cdf_csv(cdf_out, dists);
  core::write_summary_csv(summary_out, dists);
  std::fclose(cdf_out);
  std::fclose(summary_out);
  std::printf("\nwrote %s and %s\n", cdf_path.c_str(), summary_path.c_str());

  std::printf(
      "\nShape check vs paper: per-residence byte fractions spread widely "
      "(Table 1's\n0.07-0.68 range becomes a near-uniform population CDF); "
      "flow fractions sit\nsystematically above byte fractions.\n");
  return 0;
}
