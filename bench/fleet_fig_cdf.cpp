// Fleet figure: population CDFs and five-number summaries of per-residence
// metrics — Figures 1/3/4 scaled from the paper's five instrumented homes
// to a simulated fleet. Writes two CSVs (CDF curves, box/summary rows) for
// plotting or CI artifact upload, and prints the summaries to stdout.
//
//   ./build/fleet_fig_cdf [cdf-out.csv] [summary-out.csv]
//
// Scale knobs via environment (defaults in parentheses):
//   NBV6_FLEET_RESIDENCES (256)  NBV6_FLEET_DAYS (14)
//   NBV6_FLEET_SEED (20260726)   NBV6_FLEET_THREADS (0 = hw concurrency)
#include <cstdio>

#include "core/fleet_analysis.h"
#include "engine/fleet.h"
#include "traffic/service_catalog.h"

#include "bench_common.h"

using namespace nbv6;

int main(int argc, char** argv) {
  const char* cdf_path = argc > 1 ? argv[1] : "fleet_cdf.csv";
  const char* summary_path = argc > 2 ? argv[2] : "fleet_summary.csv";

  auto cfg = bench::fleet_config_from_env();
  bench::section("Fleet figure: population CDFs of per-residence metrics");
  auto catalog = traffic::build_paper_catalog();
  engine::FleetEngine fleet(catalog, cfg.threads);
  std::printf("fleet: %d residences x %d days on %d lane(s)\n",
              cfg.residences, cfg.days, fleet.lanes());
  auto result = fleet.run(cfg);

  auto matrix = core::extract_metrics(result, core::default_fleet_metrics(),
                                      fleet.pool());
  auto dists = core::population_distributions(matrix);

  for (const auto& d : dists) {
    bench::print_boxplot(d.box, core::to_string(d.metric));
  }

  std::FILE* cdf_out = std::fopen(cdf_path, "w");
  std::FILE* summary_out = std::fopen(summary_path, "w");
  if (cdf_out == nullptr || summary_out == nullptr) {
    std::fprintf(stderr, "cannot open %s / %s for writing\n", cdf_path,
                 summary_path);
    return 1;
  }
  core::write_cdf_csv(cdf_out, dists);
  core::write_summary_csv(summary_out, dists);
  std::fclose(cdf_out);
  std::fclose(summary_out);
  std::printf("\nwrote %s and %s\n", cdf_path, summary_path);

  std::printf(
      "\nShape check vs paper: per-residence byte fractions spread widely "
      "(Table 1's\n0.07-0.68 range becomes a near-uniform population CDF); "
      "flow fractions sit\nsystematically above byte fractions.\n");
  return 0;
}
